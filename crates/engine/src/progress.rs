//! Campaign-level progress telemetry: heartbeat records, shared atomic
//! counters, scoped phase timers, and memory gauges with high-water
//! tracking.
//!
//! A long-running campaign (a fuzz soak, an exhaustive explore, a bench
//! sweep) is a black box until it returns. This module gives the
//! campaign driver a passive observation channel:
//!
//! * [`CampaignCounters`] — a bag of atomics the campaign and its
//!   workers update as they go: campaign units done/total, simulator
//!   events, explorer schedules/steps, per-worker attribution slots,
//!   named phase nanosecond accumulators, and [`Gauge`]s for memory
//!   occupancy (current value plus high-water mark).
//! * [`PhaseSpan`] — an RAII guard from [`CampaignCounters::span`] that
//!   adds its scope's wall time to one named phase on drop.
//! * [`ProgressRecord`] — one `"swiftdir.progress.v1"` heartbeat,
//!   convertible to/from the in-tree [`Json`] so records round-trip
//!   through the same parser every other artifact uses.
//! * [`ProgressSampler`] — owns the counters plus a JSONL sink and an
//!   emission interval. Any thread may call [`ProgressSampler::tick`]
//!   after finishing a unit of work; the sampler emits at most one
//!   record per interval (an atomic gate plus `try_lock`, so ticking
//!   never blocks a worker).
//!
//! Everything here is strictly **passive**: counters are only ever read
//! and accumulated, never fed back into simulation decisions, so a
//! campaign's digests and reports are bit-identical with sampling on or
//! off. The policy side (environment variables, file naming, which
//! campaigns publish) lives in `swiftdir-core`; this module is
//! mechanism only.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Schema tag stamped into every heartbeat record.
pub const PROGRESS_SCHEMA: &str = "swiftdir.progress.v1";

/// Prefix shared by all progress schema versions; readers accept any
/// `swiftdir.progress.*` tag and ignore fields they do not know
/// (forward compatibility for v2).
pub const PROGRESS_SCHEMA_PREFIX: &str = "swiftdir.progress.";

/// An occupancy gauge: the current value plus the largest value ever
/// set (the high-water mark). Both are plain atomics; setting the
/// gauge is a store plus a `fetch_max`.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// Records a new current value, raising the high-water mark if it
    /// is the largest seen so far.
    pub fn set(&self, v: u64) {
        self.current.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// The most recently set value.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The largest value ever set.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// The fixed set of memory gauges every campaign record carries.
/// Campaigns update the ones that apply (a fuzz run has no seen table;
/// an untraced explore has an empty trace ring) and leave the rest 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemGauge {
    /// Explorer seen-table entries (visited state digests).
    SeenEntries,
    /// Approximate heap bytes of the seen table.
    SeenBytes,
    /// Approximate heap bytes pinned by the undo log (live frames plus
    /// the recycle pool).
    UndoBytes,
    /// Approximate heap bytes of transient-state slabs (MSHR tables,
    /// in-flight install/writeback maps).
    SlabBytes,
    /// Trace-ring occupancy (records currently retained).
    TraceRing,
}

impl MemGauge {
    /// Every gauge, in record order.
    pub const ALL: [MemGauge; 5] = [
        MemGauge::SeenEntries,
        MemGauge::SeenBytes,
        MemGauge::UndoBytes,
        MemGauge::SlabBytes,
        MemGauge::TraceRing,
    ];

    /// The JSON key for this gauge.
    pub fn name(self) -> &'static str {
        match self {
            MemGauge::SeenEntries => "seen_entries",
            MemGauge::SeenBytes => "seen_bytes",
            MemGauge::UndoBytes => "undo_bytes",
            MemGauge::SlabBytes => "slab_bytes",
            MemGauge::TraceRing => "trace_ring",
        }
    }
}

/// One worker's attribution slot. The experiment driver marks the slot
/// busy while a work item runs and counts claims (work-stealing grabs
/// from the shared queue) and completions.
#[derive(Debug, Default)]
pub struct WorkerSlot {
    busy: AtomicBool,
    claimed: AtomicU64,
    done: AtomicU64,
    busy_ns: AtomicU64,
}

impl WorkerSlot {
    /// Marks the slot busy and counts one claimed work item.
    pub fn claim(&self) {
        self.claimed.fetch_add(1, Ordering::Relaxed);
        self.busy.store(true, Ordering::Relaxed);
    }

    /// Marks the slot idle, counts one completed item, and adds the
    /// item's wall time to the slot's busy total.
    pub fn finish(&self, busy: Duration) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        self.busy.store(false, Ordering::Relaxed);
    }

    /// Whether the slot is currently running an item.
    pub fn is_busy(&self) -> bool {
        self.busy.load(Ordering::Relaxed)
    }

    /// Work items claimed so far (the steal count: every claim pulls
    /// from the single shared work queue).
    pub fn claimed(&self) -> u64 {
        self.claimed.load(Ordering::Relaxed)
    }

    /// Work items completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Total wall seconds spent inside work items.
    pub fn busy_s(&self) -> f64 {
        self.busy_ns.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// Shared, thread-safe counters for one campaign. Constructed by the
/// campaign driver (which fixes the campaign name, the worker-slot
/// count, and the phase names up front) and handed to workers behind an
/// `Arc<ProgressSampler>`.
#[derive(Debug)]
pub struct CampaignCounters {
    campaign: String,
    started: Instant,
    total: AtomicU64,
    done: AtomicU64,
    events: AtomicU64,
    schedules: AtomicU64,
    steps: AtomicU64,
    workers: Vec<WorkerSlot>,
    phase_names: Vec<&'static str>,
    phase_ns: Vec<AtomicU64>,
    gauges: [Gauge; MemGauge::ALL.len()],
}

impl CampaignCounters {
    /// Counters for campaign `campaign` with `workers` attribution
    /// slots (clamped to at least one) and the given phase names. The
    /// wall clock starts now.
    pub fn new(campaign: impl Into<String>, workers: usize, phases: &[&'static str]) -> Self {
        let workers = workers.max(1);
        CampaignCounters {
            campaign: campaign.into(),
            started: Instant::now(),
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            events: AtomicU64::new(0),
            schedules: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            workers: (0..workers).map(|_| WorkerSlot::default()).collect(),
            phase_names: phases.to_vec(),
            phase_ns: phases.iter().map(|_| AtomicU64::new(0)).collect(),
            gauges: Default::default(),
        }
    }

    /// The campaign name records are stamped with.
    pub fn campaign(&self) -> &str {
        &self.campaign
    }

    /// Wall seconds since construction.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Nanoseconds since construction (the sampler's time base).
    fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Adds `n` planned campaign units (a campaign may announce its
    /// legs incrementally).
    pub fn add_total(&self, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` completed campaign units.
    pub fn add_done(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` simulator events.
    pub fn add_events(&self, n: u64) {
        self.events.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` completed explorer schedules.
    pub fn add_schedules(&self, n: u64) {
        self.schedules.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` explorer steps.
    pub fn add_steps(&self, n: u64) {
        self.steps.fetch_add(n, Ordering::Relaxed);
    }

    /// Completed campaign units so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Planned campaign units so far.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Simulator events counted so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// The attribution slot for worker `i` (wrapped into range, so a
    /// caller with more threads than slots still lands on a valid
    /// slot).
    pub fn worker(&self, i: usize) -> &WorkerSlot {
        &self.workers[i % self.workers.len()]
    }

    /// All worker slots.
    pub fn workers(&self) -> &[WorkerSlot] {
        &self.workers
    }

    /// A scoped timer for phase `name`: its wall time is added to the
    /// phase's accumulator when the guard drops. Unknown names produce
    /// a no-op guard, so callers need not share the constructor's phase
    /// list. Spans on one thread must not overlap (see DESIGN.md §12
    /// for the scoping rules that keep phase sums bounded).
    pub fn span(&self, name: &str) -> PhaseSpan<'_> {
        let slot = self
            .phase_names
            .iter()
            .position(|&n| n == name)
            .map(|i| &self.phase_ns[i]);
        PhaseSpan {
            slot,
            start: Instant::now(),
        }
    }

    /// The gauge for `g`.
    pub fn gauge(&self, g: MemGauge) -> &Gauge {
        let i = MemGauge::ALL
            .iter()
            .position(|&m| m == g)
            .expect("MemGauge::ALL covers every variant");
        &self.gauges[i]
    }

    /// A consistent point-in-time heartbeat of every counter. `seq` and
    /// `is_final` are supplied by the sampler.
    pub fn snapshot(&self, seq: u64, is_final: bool) -> ProgressRecord {
        let elapsed_s = self.elapsed_s();
        let done = self.done();
        let total = self.total();
        let events = self.events();
        let schedules = self.schedules.load(Ordering::Relaxed);
        let rate = |n: u64| {
            if elapsed_s > 0.0 {
                n as f64 / elapsed_s
            } else {
                0.0
            }
        };
        let eta_s = if done > 0 && total > done {
            Some(elapsed_s * (total - done) as f64 / done as f64)
        } else if total > 0 && done >= total {
            Some(0.0)
        } else {
            None
        };
        ProgressRecord {
            schema: PROGRESS_SCHEMA.to_string(),
            campaign: self.campaign.clone(),
            seq,
            is_final,
            resumed: false,
            elapsed_s,
            done,
            total,
            fraction: if total > 0 {
                done as f64 / total as f64
            } else {
                0.0
            },
            eta_s,
            units_per_s: rate(done),
            events,
            events_per_s: rate(events),
            schedules,
            schedules_per_s: rate(schedules),
            steps: self.steps.load(Ordering::Relaxed),
            queue_depth: total.saturating_sub(done),
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(id, w)| WorkerSnapshot {
                    id,
                    busy: w.is_busy(),
                    claimed: w.claimed(),
                    done: w.done(),
                    busy_s: w.busy_s(),
                })
                .collect(),
            phases: self
                .phase_names
                .iter()
                .zip(&self.phase_ns)
                .map(|(&n, ns)| (n.to_string(), ns.load(Ordering::Relaxed) as f64 / 1e9))
                .collect(),
            memory: MemGauge::ALL
                .iter()
                .map(|&g| {
                    let gauge = self.gauge(g);
                    (
                        g.name().to_string(),
                        GaugeSnapshot {
                            current: gauge.current(),
                            high: gauge.high_water(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// RAII phase timer from [`CampaignCounters::span`]; adds its scope's
/// wall time to the phase accumulator when dropped.
#[derive(Debug)]
pub struct PhaseSpan<'a> {
    slot: Option<&'a AtomicU64>,
    start: Instant,
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot {
            slot.fetch_add(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// One gauge reading inside a [`ProgressRecord`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSnapshot {
    /// Value at sampling time.
    pub current: u64,
    /// High-water mark over the campaign so far.
    pub high: u64,
}

/// One worker's attribution inside a [`ProgressRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    /// Slot index.
    pub id: usize,
    /// Whether the worker was running an item at sampling time.
    pub busy: bool,
    /// Items claimed from the shared queue (the steal count).
    pub claimed: u64,
    /// Items completed.
    pub done: u64,
    /// Wall seconds spent inside items.
    pub busy_s: f64,
}

/// One `"swiftdir.progress.v1"` heartbeat. See DESIGN.md §12 for the
/// field-by-field schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressRecord {
    /// Schema tag (`"swiftdir.progress.v1"`).
    pub schema: String,
    /// Campaign name (`"fuzz"`, `"explore"`, `"bench"`, …).
    pub campaign: String,
    /// Emission sequence number, strictly increasing per campaign.
    pub seq: u64,
    /// Whether this is the campaign's final record.
    pub is_final: bool,
    /// Whether this is the first record after a checkpoint resume. The
    /// resumed process pre-seeds `done`/`events` from the checkpoint
    /// (so they stay monotone across the gap) but restarts the wall
    /// clock — stream validators exempt `elapsed_s` from its
    /// never-backwards rule exactly at a resumed record.
    pub resumed: bool,
    /// Wall seconds since the campaign started.
    pub elapsed_s: f64,
    /// Campaign units completed (fuzz: seeds; explore: trees).
    pub done: u64,
    /// Campaign units planned so far.
    pub total: u64,
    /// `done / total` (0 while `total` is unknown).
    pub fraction: f64,
    /// Estimated seconds to completion, if computable.
    pub eta_s: Option<f64>,
    /// Campaign units per second (cumulative average).
    pub units_per_s: f64,
    /// Simulator events so far.
    pub events: u64,
    /// Events per second (cumulative average).
    pub events_per_s: f64,
    /// Explorer schedules completed so far.
    pub schedules: u64,
    /// Schedules per second (cumulative average).
    pub schedules_per_s: f64,
    /// Explorer steps so far.
    pub steps: u64,
    /// Campaign units not yet completed (the shared work queue depth).
    pub queue_depth: u64,
    /// Per-worker attribution.
    pub workers: Vec<WorkerSnapshot>,
    /// Per-phase wall seconds, in declaration order.
    pub phases: Vec<(String, f64)>,
    /// Memory gauges, in [`MemGauge::ALL`] order.
    pub memory: Vec<(String, GaugeSnapshot)>,
}

impl ProgressRecord {
    /// Sum of all phase seconds. Per-thread spans never overlap, so
    /// this is bounded by `elapsed_s * (workers + 1)` (workers plus the
    /// campaign driver thread), and by `elapsed_s` alone on one thread.
    pub fn phase_sum_s(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// Number of workers busy at sampling time.
    pub fn busy_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.busy).count()
    }

    /// The record as a JSON object (one heartbeat line when written
    /// compactly).
    pub fn to_json(&self) -> Json {
        let eta = match self.eta_s {
            Some(s) => Json::Float(s),
            None => Json::Null,
        };
        let mut j = Json::object([
            ("schema", Json::from(self.schema.as_str())),
            ("campaign", Json::from(self.campaign.as_str())),
            ("seq", Json::Uint(self.seq)),
            ("final", Json::Bool(self.is_final)),
            ("elapsed_s", Json::Float(self.elapsed_s)),
            ("done", Json::Uint(self.done)),
            ("total", Json::Uint(self.total)),
            ("fraction", Json::Float(self.fraction)),
            ("eta_s", eta),
            ("units_per_s", Json::Float(self.units_per_s)),
            ("events", Json::Uint(self.events)),
            ("events_per_s", Json::Float(self.events_per_s)),
            ("schedules", Json::Uint(self.schedules)),
            ("schedules_per_s", Json::Float(self.schedules_per_s)),
            ("steps", Json::Uint(self.steps)),
            ("queue_depth", Json::Uint(self.queue_depth)),
            (
                "workers",
                Json::array(self.workers.iter().map(|w| {
                    Json::object([
                        ("id", Json::Uint(w.id as u64)),
                        ("busy", Json::Bool(w.busy)),
                        ("claimed", Json::Uint(w.claimed)),
                        ("done", Json::Uint(w.done)),
                        ("busy_s", Json::Float(w.busy_s)),
                    ])
                })),
            ),
            (
                "phases",
                Json::object(
                    self.phases
                        .iter()
                        .map(|(n, s)| (n.as_str(), Json::Float(*s))),
                ),
            ),
            (
                "memory",
                Json::object(self.memory.iter().map(|(n, g)| {
                    (
                        n.as_str(),
                        Json::object([
                            ("current", Json::Uint(g.current)),
                            ("high", Json::Uint(g.high)),
                        ]),
                    )
                })),
            ),
        ]);
        // `resumed` is emitted only when set: the common (fresh-run) case
        // stays byte-identical to older streams, and tolerant parsers
        // default the missing key to false.
        if self.resumed {
            if let Json::Object(members) = &mut j {
                members.push(("resumed".to_string(), Json::Bool(true)));
            }
        }
        j
    }

    /// Parses a heartbeat from its JSON form. Tolerant by design:
    /// unknown fields are ignored and missing fields default, so a v1
    /// reader keeps working on a v2 stream. Only the schema tag is
    /// mandatory and must start with `"swiftdir.progress."`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not an object or carries a
    /// foreign schema tag.
    pub fn parse(j: &Json) -> Result<ProgressRecord, String> {
        if j.as_object().is_none() {
            return Err("progress record is not a JSON object".to_string());
        }
        let schema = j
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("progress record has no schema tag")?;
        if !schema.starts_with(PROGRESS_SCHEMA_PREFIX) {
            return Err(format!("foreign schema tag {schema:?}"));
        }
        let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let f = |k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let workers = j
            .get("workers")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|w| WorkerSnapshot {
                id: w.get("id").and_then(Json::as_u64).unwrap_or(0) as usize,
                busy: matches!(w.get("busy"), Some(Json::Bool(true))),
                claimed: w.get("claimed").and_then(Json::as_u64).unwrap_or(0),
                done: w.get("done").and_then(Json::as_u64).unwrap_or(0),
                busy_s: w.get("busy_s").and_then(Json::as_f64).unwrap_or(0.0),
            })
            .collect();
        let phases = j
            .get("phases")
            .and_then(Json::as_object)
            .unwrap_or(&[])
            .iter()
            .map(|(n, s)| (n.clone(), s.as_f64().unwrap_or(0.0)))
            .collect();
        let memory = j
            .get("memory")
            .and_then(Json::as_object)
            .unwrap_or(&[])
            .iter()
            .map(|(n, g)| {
                (
                    n.clone(),
                    GaugeSnapshot {
                        current: g.get("current").and_then(Json::as_u64).unwrap_or(0),
                        high: g.get("high").and_then(Json::as_u64).unwrap_or(0),
                    },
                )
            })
            .collect();
        Ok(ProgressRecord {
            schema: schema.to_string(),
            campaign: j
                .get("campaign")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            seq: u("seq"),
            is_final: matches!(j.get("final"), Some(Json::Bool(true))),
            resumed: matches!(j.get("resumed"), Some(Json::Bool(true))),
            elapsed_s: f("elapsed_s"),
            done: u("done"),
            total: u("total"),
            fraction: f("fraction"),
            eta_s: j.get("eta_s").and_then(Json::as_f64),
            units_per_s: f("units_per_s"),
            events: u("events"),
            events_per_s: f("events_per_s"),
            schedules: u("schedules"),
            schedules_per_s: f("schedules_per_s"),
            steps: u("steps"),
            queue_depth: u("queue_depth"),
            workers,
            phases,
            memory,
        })
    }

    /// Parses one JSONL heartbeat line.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a foreign schema.
    pub fn parse_line(line: &str) -> Result<ProgressRecord, String> {
        let j = Json::parse(line).map_err(|e| e.to_string())?;
        Self::parse(&j)
    }
}

struct SamplerSink {
    out: Box<dyn Write + Send>,
    seq: u64,
    finished: bool,
    broken: bool,
}

impl SamplerSink {
    fn emit(&mut self, rec: &ProgressRecord, extra: &[(String, Json)]) {
        if self.broken {
            return;
        }
        let mut j = rec.to_json();
        if let Json::Object(members) = &mut j {
            members.extend(extra.iter().cloned());
        }
        let mut line = String::new();
        j.write(&mut line);
        line.push('\n');
        // Flush per record so `swiftdir-report --follow` sees heartbeats
        // live; records are rare (one per interval), so this is cheap.
        if self.out.write_all(line.as_bytes()).is_err() || self.out.flush().is_err() {
            eprintln!("swiftdir: progress sink write failed; heartbeats disabled");
            self.broken = true;
        }
        self.seq += 1;
    }
}

impl std::fmt::Debug for SamplerSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplerSink")
            .field("seq", &self.seq)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

/// Interval-gated heartbeat emitter. Owns the [`CampaignCounters`] and
/// the JSONL sink; campaign code shares it behind an `Arc` and workers
/// call [`ProgressSampler::tick`] whenever convenient — emission is
/// rate-limited to one record per interval and never blocks (the gate
/// is an atomic load; the sink is taken with `try_lock`).
#[derive(Debug)]
pub struct ProgressSampler {
    counters: CampaignCounters,
    interval_ns: u64,
    last_emit_ns: AtomicU64,
    // Set by `resumed()`; the first record emitted (heartbeat or final)
    // swaps it off and carries `"resumed": true`.
    resume_mark: AtomicBool,
    sink: Mutex<SamplerSink>,
}

impl ProgressSampler {
    /// A sampler emitting to `sink` at most once per `interval`
    /// (`interval` zero means every tick emits). The first record is
    /// emitted on the first tick at or after one interval.
    pub fn new(
        counters: CampaignCounters,
        sink: Box<dyn Write + Send>,
        interval: Duration,
    ) -> Self {
        ProgressSampler {
            counters,
            interval_ns: interval.as_nanos() as u64,
            last_emit_ns: AtomicU64::new(0),
            resume_mark: AtomicBool::new(false),
            sink: Mutex::new(SamplerSink {
                out: sink,
                seq: 0,
                finished: false,
                broken: false,
            }),
        }
    }

    /// A sampler continuing a checkpointed campaign's heartbeat stream.
    /// Sequence numbers start at `start_seq` (one past the killed
    /// stream's last durable record, so `seq` stays strictly increasing
    /// across the gap) and the first record emitted carries
    /// `"resumed": true` — the marker `swiftdir-report --follow` renders
    /// and `--check-progress` uses to exempt the wall-clock restart.
    /// The caller pre-seeds `counters` with the checkpoint's completed
    /// totals so `done`/`events` stay monotone too.
    pub fn resumed(
        counters: CampaignCounters,
        sink: Box<dyn Write + Send>,
        interval: Duration,
        start_seq: u64,
    ) -> Self {
        let s = Self::new(counters, sink, interval);
        s.sink.lock().expect("progress sink poisoned").seq = start_seq;
        s.resume_mark.store(true, Ordering::Relaxed);
        s
    }

    /// The campaign's shared counters.
    pub fn counters(&self) -> &CampaignCounters {
        &self.counters
    }

    /// The emission interval.
    pub fn interval(&self) -> Duration {
        Duration::from_nanos(self.interval_ns)
    }

    /// Emits a heartbeat if one is due. Safe and cheap to call from any
    /// worker after any unit of work: off the emission path this is one
    /// atomic load and a comparison, and a contended sink is simply
    /// skipped (the next tick will catch up).
    pub fn tick(&self) {
        let now = self.counters.elapsed_ns();
        if now.saturating_sub(self.last_emit_ns.load(Ordering::Relaxed)) < self.interval_ns {
            return;
        }
        let Ok(mut sink) = self.sink.try_lock() else {
            return;
        };
        if sink.finished {
            return;
        }
        // Re-check under the lock: another worker may have just emitted.
        let now = self.counters.elapsed_ns();
        if now.saturating_sub(self.last_emit_ns.load(Ordering::Relaxed)) < self.interval_ns {
            return;
        }
        self.last_emit_ns.store(now, Ordering::Relaxed);
        let mut rec = self.counters.snapshot(sink.seq, false);
        rec.resumed = self.resume_mark.swap(false, Ordering::Relaxed);
        sink.emit(&rec, &[]);
    }

    /// Emits the campaign's final record (with `"final": true`)
    /// unconditionally and closes the stream: later ticks are no-ops.
    pub fn finish(&self) {
        self.finish_with_extra(Vec::new());
    }

    /// Like [`ProgressSampler::finish`], but appends `extra` members to
    /// the final record — the hook campaign drivers use to fold
    /// campaign-specific payloads (e.g. the explorer's depth profile)
    /// into the heartbeat stream.
    pub fn finish_with_extra(&self, extra: Vec<(String, Json)>) {
        let mut sink = self.sink.lock().expect("progress sink poisoned");
        if sink.finished {
            return;
        }
        let mut rec = self.counters.snapshot(sink.seq, true);
        rec.resumed = self.resume_mark.swap(false, Ordering::Relaxed);
        sink.emit(&rec, &extra);
        sink.finished = true;
    }

    /// Whether [`ProgressSampler::finish`] has run.
    pub fn is_finished(&self) -> bool {
        self.sink.lock().expect("progress sink poisoned").finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` handing every byte to a shared buffer, so tests can
    /// read back what the sampler emitted.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_counters() -> CampaignCounters {
        let c = CampaignCounters::new("test", 2, &["generate", "run", "check"]);
        c.add_total(10);
        c.add_done(4);
        c.add_events(1000);
        c.add_schedules(7);
        c.add_steps(70);
        c.worker(0).claim();
        c.worker(0).finish(Duration::from_millis(5));
        c.worker(1).claim();
        c.gauge(MemGauge::SeenEntries).set(42);
        c.gauge(MemGauge::SeenEntries).set(17);
        c
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.set(5);
        g.set(9);
        g.set(3);
        assert_eq!(g.current(), 3);
        assert_eq!(g.high_water(), 9);
    }

    #[test]
    fn phase_spans_accumulate_and_unknown_names_are_noops() {
        let c = CampaignCounters::new("t", 1, &["run"]);
        {
            let _s = c.span("run");
            std::thread::sleep(Duration::from_millis(2));
        }
        let _ = c.span("no-such-phase");
        let rec = c.snapshot(0, false);
        let run = rec.phases.iter().find(|(n, _)| n == "run").unwrap().1;
        assert!(run >= 0.002, "span must record its scope: {run}");
        assert_eq!(rec.phases.len(), 1);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let rec = sample_counters().snapshot(3, false);
        assert_eq!(rec.schema, PROGRESS_SCHEMA);
        assert_eq!(rec.campaign, "test");
        assert_eq!((rec.seq, rec.done, rec.total), (3, 4, 10));
        assert!((rec.fraction - 0.4).abs() < 1e-12);
        assert_eq!(rec.queue_depth, 6);
        assert!(rec.eta_s.is_some());
        assert_eq!(rec.workers.len(), 2);
        assert!(!rec.workers[0].busy && rec.workers[1].busy);
        assert_eq!(rec.workers[0].done, 1);
        assert_eq!(rec.busy_workers(), 1);
        let seen = &rec
            .memory
            .iter()
            .find(|(n, _)| n == "seen_entries")
            .unwrap()
            .1;
        assert_eq!((seen.current, seen.high), (17, 42));
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = sample_counters().snapshot(5, true);
        let text = {
            let mut s = String::new();
            rec.to_json().write(&mut s);
            s
        };
        let back = ProgressRecord::parse_line(&text).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn parse_tolerates_unknown_and_missing_fields() {
        // A sparse v2-flavoured record: new fields, missing optionals.
        let text = r#"{"schema":"swiftdir.progress.v2","campaign":"fuzz",
            "done":3,"novel_field":{"x":1},"workers":[{"id":0,"new":true}]}"#;
        let rec = ProgressRecord::parse_line(text).unwrap();
        assert_eq!(rec.schema, "swiftdir.progress.v2");
        assert_eq!(rec.done, 3);
        assert_eq!(rec.total, 0);
        assert_eq!(rec.workers.len(), 1);
        assert!(rec.eta_s.is_none());

        assert!(ProgressRecord::parse_line(r#"{"schema":"swiftdir.run.v1"}"#).is_err());
        assert!(ProgressRecord::parse_line("[]").is_err());
        assert!(ProgressRecord::parse_line("{}").is_err());
    }

    #[test]
    fn sampler_rate_limits_and_finishes_once() {
        let buf = SharedBuf::default();
        let s = ProgressSampler::new(
            CampaignCounters::new("t", 1, &[]),
            Box::new(buf.clone()),
            Duration::from_secs(3600),
        );
        s.counters().add_total(2);
        s.tick(); // within the first interval: nothing emitted
        s.tick();
        assert!(buf.text().is_empty());
        s.counters().add_done(2);
        s.finish();
        s.finish(); // idempotent
        s.tick(); // after finish: no-op
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let rec = ProgressRecord::parse_line(lines[0]).unwrap();
        assert!(rec.is_final);
        assert_eq!(rec.done, 2);
        assert_eq!(rec.eta_s, Some(0.0));
    }

    #[test]
    fn zero_interval_emits_every_tick_and_is_monotone() {
        let buf = SharedBuf::default();
        let s = ProgressSampler::new(
            CampaignCounters::new("t", 1, &[]),
            Box::new(buf.clone()),
            Duration::ZERO,
        );
        s.counters().add_total(5);
        for i in 0..5 {
            s.counters().add_done(1);
            s.counters().add_events(10 * (i + 1));
            s.tick();
        }
        s.finish_with_extra(vec![("depth_profile".to_string(), Json::array([]))]);
        let text = buf.text();
        let recs: Vec<ProgressRecord> = text
            .lines()
            .map(|l| ProgressRecord::parse_line(l).unwrap())
            .collect();
        assert_eq!(recs.len(), 6);
        for pair in recs.windows(2) {
            assert!(pair[1].seq > pair[0].seq, "seq strictly increases");
            assert!(pair[1].done >= pair[0].done, "done is monotone");
            assert!(pair[1].events >= pair[0].events, "events are monotone");
        }
        assert!(recs.last().unwrap().is_final);
        // The extra member is visible to a raw JSON reader and ignored
        // by the tolerant record parser.
        let last_line = text.lines().last().unwrap();
        let j = Json::parse(last_line).unwrap();
        assert!(j.get("depth_profile").is_some());
    }
}
