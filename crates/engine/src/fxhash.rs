//! A dependency-free FxHash-style hasher for fixed-size simulator keys.
//!
//! The simulator's hot maps are keyed by small integers with plenty of
//! entropy of their own — block addresses, VPNs, set indices, request ids.
//! `std`'s default SipHash pays for DoS resistance these internal keys do
//! not need; the rustc/Firefox "Fx" multiply-xor mix is a single rotate,
//! xor, and multiply per word and is the classic fixed-key hashing win for
//! address-keyed simulator maps.
//!
//! # Example
//!
//! ```
//! use sim_engine::fxhash::FxHashMap;
//!
//! let mut pending: FxHashMap<u64, u32> = FxHashMap::default();
//! pending.insert(0x10_0040, 7);
//! assert_eq!(pending[&0x10_0040], 7);
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Knuth's 64-bit multiplicative-hashing constant (2^64 / φ), as used by
/// rustc's `FxHasher`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The multiply-xor hasher. One `rotate_left(5) ^ word` then `* SEED` per
/// 8-byte word; not DoS-resistant, not for untrusted input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// on trusted, fixed-size keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Estimates the heap footprint of a `HashMap`/`HashSet` (hashbrown
/// swiss-table layout) from its reported `capacity()` and the byte size
/// of one `(K, V)` entry.
///
/// `capacity()` is the *usable* capacity — ⌊7/8⌋ of the allocated bucket
/// count — so the raw `capacity * size_of::<entry>()` figure undercounts
/// both the 1/8 load-factor headroom and the per-bucket control byte,
/// plus the trailing control-group sentinel. This reconstructs the
/// power-of-two bucket count and charges every allocated bucket.
pub fn map_heap_bytes(capacity: usize, entry_bytes: usize) -> u64 {
    if capacity == 0 {
        return 0;
    }
    // Invert usable = buckets * 7 / 8: smallest power of two whose
    // usable capacity covers `capacity`. Small maps allocate at least
    // 4 buckets.
    let buckets = capacity
        .saturating_mul(8)
        .div_ceil(7)
        .next_power_of_two()
        .max(4) as u64;
    // One control byte per bucket, plus one trailing group (16 bytes on
    // the SSE2 layout) so probes can read a full group past the end.
    buckets * (entry_bytes as u64 + 1) + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_for_equal_input() {
        assert_eq!(
            hash_of(|h| h.write_u64(0xdead_beef)),
            hash_of(|h| h.write_u64(0xdead_beef)),
        );
    }

    #[test]
    fn nearby_addresses_spread() {
        // Block addresses differ only in low bits; the mix must spread them
        // across the full 64-bit range so bucket masking sees entropy.
        let a = hash_of(|h| h.write_u64(0x10_0000));
        let b = hash_of(|h| h.write_u64(0x10_0040));
        assert_ne!(a, b);
        assert_ne!(a >> 32, b >> 32, "high bits must differ too");
    }

    #[test]
    fn byte_stream_matches_padded_words() {
        // write() must consume trailing partial words.
        let a = hash_of(|h| h.write(&[1, 2, 3]));
        let b = hash_of(|h| h.write(&[1, 2, 3, 0, 0]));
        // Different lengths zero-pad differently only in the tail word;
        // both must at least run without loss.
        assert_ne!(hash_of(|h| h.write(&[1, 2, 3])), 0);
        let _ = (a, b);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 64, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn set_roundtrip() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(&42));
    }

    #[test]
    fn map_heap_bytes_charges_control_overhead() {
        assert_eq!(map_heap_bytes(0, 16), 0);
        let mut m: FxHashMap<u64, bool> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i % 2 == 0);
        }
        let entry = std::mem::size_of::<(u64, bool)>();
        let est = map_heap_bytes(m.capacity(), entry);
        let naive = m.capacity() as u64 * entry as u64;
        assert!(
            est > naive,
            "estimate must exceed the usable-capacity figure"
        );
        // Every resident entry is charged at least entry + control byte.
        assert!(est >= m.len() as u64 * (entry as u64 + 1));
    }

    #[test]
    fn tuple_keys_hash() {
        let mut m: FxHashMap<(u32, u64), u8> = FxHashMap::default();
        m.insert((3, 9), 1);
        assert_eq!(m.get(&(3, 9)), Some(&1));
        assert_eq!(m.get(&(9, 3)), None);
    }
}
