//! Structured protocol tracing: typed events, pluggable sinks, and a
//! zero-cost-when-disabled front end.
//!
//! The simulator's controllers emit [`TraceEvent`]s describing the
//! protocol-level life of every request — issue, state transitions with
//! from→to states, message sends/receives, MSHR merges and stalls,
//! writebacks, completions. Emission goes through [`Tracer::emit`], which
//! takes a *closure*: when tracing is disabled (the production case) the
//! closure never runs and the whole call collapses to one branch on a
//! bool, keeping instrumentation off the hot path.
//!
//! Three sinks cover the debugging spectrum:
//!
//! * a bounded ring ([`Tracer::ring`], built on
//!   [`TraceBuffer`](crate::trace::TraceBuffer)) retaining recent history
//!   for invariant-failure dumps;
//! * [`JsonlSink`] — one JSON object per line, the machine-readable full
//!   trace CI and scripts diff;
//! * [`ChromeTraceSink`] — the Chrome `trace_event` array format, loadable
//!   into `chrome://tracing` / Perfetto with one cycle mapped to one
//!   microsecond.

use std::fmt;
use std::io::{self, Write};

use crate::cycle::Cycle;
use crate::json::Json;
use crate::trace::TraceBuffer;

/// The simulated component an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A core / its private L1 controller.
    L1,
    /// The shared LLC + directory controller.
    Llc,
    /// The memory controller.
    Mem,
}

impl Unit {
    /// Short stable name used in serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            Unit::L1 => "L1",
            Unit::Llc => "LLC",
            Unit::Mem => "Mem",
        }
    }
}

/// What happened (the typed event model).
///
/// Component names, states, and message classes are `&'static str` so
/// building an event allocates nothing; producers pass the display names
/// of their typed enums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A core presented a request to its L1.
    Issue {
        /// Request class (`"Load"`, `"Store"`, `"Load_WP"`).
        class: &'static str,
    },
    /// A controller moved a line between states.
    Transition {
        /// Which controller.
        unit: Unit,
        /// State before.
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// A message left a controller.
    MsgSend {
        /// Message class (Table III name).
        msg: &'static str,
        /// Sender.
        from: Unit,
        /// Receiver.
        to: Unit,
    },
    /// A message arrived at a controller.
    MsgRecv {
        /// Message class (Table III name).
        msg: &'static str,
        /// Receiver.
        unit: Unit,
    },
    /// A request merged into an already-outstanding miss on its block.
    MshrMerge,
    /// A request stalled because every MSHR was occupied.
    MshrStall,
    /// A writeback arrived at the LLC.
    Writeback {
        /// Whether the data was dirty (an M-line writeback).
        dirty: bool,
    },
    /// A request completed.
    Complete {
        /// Request class as accounted in the latency histograms.
        class: &'static str,
        /// Which component supplied the data.
        served_from: &'static str,
        /// End-to-end latency in cycles.
        latency: u64,
    },
}

impl TraceKind {
    /// Short stable name of the event kind.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Issue { .. } => "issue",
            TraceKind::Transition { .. } => "transition",
            TraceKind::MsgSend { .. } => "send",
            TraceKind::MsgRecv { .. } => "recv",
            TraceKind::MshrMerge => "mshr_merge",
            TraceKind::MshrStall => "mshr_stall",
            TraceKind::Writeback { .. } => "writeback",
            TraceKind::Complete { .. } => "complete",
        }
    }
}

/// One timestamped protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Cycle,
    /// The core involved, if core-specific.
    pub core: Option<usize>,
    /// The block address concerned (0 when not address-specific).
    pub addr: u64,
    /// The request id this event serves, if tied to one.
    pub req: Option<u64>,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Serializes as the JSONL object emitted by [`JsonlSink`].
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("t".to_string(), Json::from(self.at.get())),
            ("ev".to_string(), Json::from(self.kind.name())),
        ];
        if let Some(core) = self.core {
            members.push(("core".to_string(), Json::from(core)));
        }
        if self.addr != 0 {
            members.push(("addr".to_string(), Json::Str(format!("{:#x}", self.addr))));
        }
        if let Some(req) = self.req {
            members.push(("req".to_string(), Json::from(req)));
        }
        match self.kind {
            TraceKind::Issue { class } => {
                members.push(("class".to_string(), Json::from(class)));
            }
            TraceKind::Transition { unit, from, to } => {
                members.push(("unit".to_string(), Json::from(unit.name())));
                members.push(("from".to_string(), Json::from(from)));
                members.push(("to".to_string(), Json::from(to)));
            }
            TraceKind::MsgSend { msg, from, to } => {
                members.push(("msg".to_string(), Json::from(msg)));
                members.push(("src".to_string(), Json::from(from.name())));
                members.push(("dst".to_string(), Json::from(to.name())));
            }
            TraceKind::MsgRecv { msg, unit } => {
                members.push(("msg".to_string(), Json::from(msg)));
                members.push(("unit".to_string(), Json::from(unit.name())));
            }
            TraceKind::MshrMerge | TraceKind::MshrStall => {}
            TraceKind::Writeback { dirty } => {
                members.push(("dirty".to_string(), Json::from(dirty)));
            }
            TraceKind::Complete {
                class,
                served_from,
                latency,
            } => {
                members.push(("class".to_string(), Json::from(class)));
                members.push(("served_from".to_string(), Json::from(served_from)));
                members.push(("latency".to_string(), Json::from(latency)));
            }
        }
        Json::Object(members)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(core) = self.core {
            write!(f, "core{core} ")?;
        }
        if self.addr != 0 {
            write!(f, "{:#x} ", self.addr)?;
        }
        match self.kind {
            TraceKind::Issue { class } => write!(f, "issue {class}"),
            TraceKind::Transition { unit, from, to } => {
                write!(f, "{} {from}->{to}", unit.name())
            }
            TraceKind::MsgSend { msg, from, to } => {
                write!(f, "send {msg} {}->{}", from.name(), to.name())
            }
            TraceKind::MsgRecv { msg, unit } => write!(f, "recv {msg} @{}", unit.name()),
            TraceKind::MshrMerge => write!(f, "mshr merge"),
            TraceKind::MshrStall => write!(f, "mshr stall"),
            TraceKind::Writeback { dirty } => {
                write!(f, "writeback {}", if dirty { "dirty" } else { "clean" })
            }
            TraceKind::Complete {
                class,
                served_from,
                latency,
            } => write!(f, "complete {class} from {served_from} in {latency}cy"),
        }
    }
}

/// A destination for trace events.
pub trait TraceSink: Send {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes and finalizes the sink's output (e.g. closes the Chrome
    /// trace's JSON array). Called once; further records are undefined.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes one JSON object per event, newline-delimited (JSONL).
pub struct JsonlSink<W: Write + Send> {
    out: W,
    buf: String,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing to `out` (wrap files in a `BufWriter`).
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            buf: String::with_capacity(256),
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        self.buf.clear();
        ev.to_json().write(&mut self.buf);
        self.buf.push('\n');
        // Trace I/O errors must not abort a simulation mid-protocol;
        // finish() surfaces them.
        let _ = self.out.write_all(self.buf.as_bytes());
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Writes the Chrome `trace_event` JSON array format.
///
/// One simulated cycle is mapped to one microsecond of trace time.
/// Completions become duration (`"X"`) events spanning issue→done; all
/// other events are instants (`"i"`). The `tid` is the core number
/// (LLC = 1000, memory = 1001) so per-core lanes line up in the viewer.
pub struct ChromeTraceSink<W: Write + Send> {
    out: W,
    buf: String,
    first: bool,
}

/// The `tid` lane used for LLC-scoped events.
pub const CHROME_TID_LLC: u64 = 1000;
/// The `tid` lane used for memory-scoped events.
pub const CHROME_TID_MEM: u64 = 1001;

impl<W: Write + Send> ChromeTraceSink<W> {
    /// A sink writing to `out` (wrap files in a `BufWriter`).
    pub fn new(mut out: W) -> Self {
        let _ = out.write_all(b"[");
        ChromeTraceSink {
            out,
            buf: String::with_capacity(256),
            first: true,
        }
    }

    fn tid(ev: &TraceEvent) -> u64 {
        match ev.kind {
            TraceKind::MsgRecv {
                unit: Unit::Llc, ..
            }
            | TraceKind::Transition {
                unit: Unit::Llc, ..
            }
            | TraceKind::Writeback { .. } => CHROME_TID_LLC,
            TraceKind::MsgRecv {
                unit: Unit::Mem, ..
            }
            | TraceKind::Transition {
                unit: Unit::Mem, ..
            } => CHROME_TID_MEM,
            _ => ev.core.map_or(CHROME_TID_LLC, |c| c as u64),
        }
    }
}

impl<W: Write + Send> TraceSink for ChromeTraceSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        let name = match ev.kind {
            TraceKind::Issue { class } => Json::from(class),
            TraceKind::Transition { from, to, .. } => Json::Str(format!("{from}->{to}")),
            TraceKind::MsgSend { msg, .. } | TraceKind::MsgRecv { msg, .. } => Json::from(msg),
            TraceKind::MshrMerge => Json::from("MSHR_merge"),
            TraceKind::MshrStall => Json::from("MSHR_stall"),
            TraceKind::Writeback { dirty } => {
                Json::from(if dirty { "WB_dirty" } else { "WB_clean" })
            }
            TraceKind::Complete { class, .. } => Json::from(class),
        };
        let (ph, ts, dur) = match ev.kind {
            TraceKind::Complete { latency, .. } => {
                ("X", ev.at.get().saturating_sub(latency), Some(latency))
            }
            _ => ("i", ev.at.get(), None),
        };
        let mut obj = vec![
            ("name".to_string(), name),
            ("ph".to_string(), Json::from(ph)),
            ("ts".to_string(), Json::from(ts)),
            ("pid".to_string(), Json::from(0u64)),
            ("tid".to_string(), Json::from(Self::tid(ev))),
        ];
        if ph == "i" {
            // Instant events need a scope; "t" (thread) keeps them in-lane.
            obj.insert(2, ("s".to_string(), Json::from("t")));
        }
        if let Some(d) = dur {
            obj.push(("dur".to_string(), Json::from(d)));
        }
        obj.push(("args".to_string(), ev.to_json()));
        self.buf.clear();
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        Json::Object(obj).write(&mut self.buf);
        self.buf.push('\n');
        let _ = self.out.write_all(self.buf.as_bytes());
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.write_all(b"]\n")?;
        self.out.flush()
    }
}

/// The tracing front end controllers hold.
///
/// Disabled by default and zero-cost there: [`Tracer::emit`] is one branch
/// on a bool and the event-building closure never runs. Enabled tracers
/// fan each event to an optional bounded ring plus any number of writer
/// sinks, up to an event budget (`limit`), after which tracing turns
/// itself off rather than producing unbounded output.
pub struct Tracer {
    enabled: bool,
    remaining: u64,
    emitted: u64,
    ring: Option<TraceBuffer<TraceEvent>>,
    sinks: Vec<Box<dyn TraceSink>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("emitted", &self.emitted)
            .field("sinks", &self.sinks.len())
            .field("ring", &self.ring.is_some())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The production tracer: nothing is recorded, emit is one branch.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            remaining: u64::MAX,
            emitted: 0,
            ring: None,
            sinks: Vec::new(),
        }
    }

    /// An enabled tracer with no sinks yet (attach with
    /// [`Tracer::with_ring`] / [`Tracer::with_sink`]).
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            ..Tracer::disabled()
        }
    }

    /// Attaches a bounded ring retaining the `capacity` most recent events
    /// (for invariant-failure dumps).
    #[must_use]
    pub fn with_ring(mut self, capacity: usize) -> Self {
        self.ring = Some(TraceBuffer::new(capacity));
        self
    }

    /// Attaches a writer sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Caps the number of events emitted; the tracer disables itself when
    /// the budget is exhausted (`u64::MAX` = unlimited, the default).
    #[must_use]
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.remaining = limit;
        if limit == 0 {
            self.enabled = false;
        }
        self
    }

    /// Whether events are currently recorded.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The bounded ring of recent events, if one is attached.
    pub fn ring(&self) -> Option<&TraceBuffer<TraceEvent>> {
        self.ring.as_ref()
    }

    /// Emits one event. The closure only runs when tracing is enabled —
    /// callers can build events (format states, compute classes) for free
    /// in the disabled case.
    #[inline(always)]
    pub fn emit<F: FnOnce() -> TraceEvent>(&mut self, build: F) {
        if !self.enabled {
            return;
        }
        self.dispatch(build());
    }

    #[cold]
    fn dispatch(&mut self, ev: TraceEvent) {
        self.emitted += 1;
        if let Some(ring) = &mut self.ring {
            ring.push(ev.at, || ev);
        }
        for sink in &mut self.sinks {
            sink.record(&ev);
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            self.enabled = false;
        }
    }

    /// Finalizes every sink (flushes files, closes the Chrome array) and
    /// disables the tracer. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns the first sink error encountered (all sinks are still
    /// finished).
    pub fn finish(&mut self) -> io::Result<()> {
        self.enabled = false;
        let mut result = Ok(());
        for sink in &mut self.sinks {
            let r = sink.finish();
            if result.is_ok() {
                result = r;
            }
        }
        self.sinks.clear();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A writer into shared memory for sink tests.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn ev(at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Cycle(at),
            core: Some(0),
            addr: 0x40,
            req: Some(7),
            kind,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut t = Tracer::disabled();
        t.emit(|| panic!("closure must not run when disabled"));
        assert_eq!(t.emitted(), 0);
    }

    #[test]
    fn ring_keeps_recent_events() {
        let mut t = Tracer::enabled().with_ring(2);
        for i in 0..5 {
            t.emit(|| ev(i, TraceKind::MshrMerge));
        }
        let ring = t.ring().unwrap();
        assert_eq!(ring.len(), 2);
        let ats: Vec<u64> = ring.iter().map(|(c, _)| c.get()).collect();
        assert_eq!(ats, vec![3, 4]);
        assert_eq!(t.emitted(), 5);
    }

    #[test]
    fn limit_disables_tracing() {
        let mut t = Tracer::enabled().with_ring(16).with_limit(3);
        for i in 0..10 {
            t.emit(|| ev(i, TraceKind::MshrStall));
        }
        assert_eq!(t.emitted(), 3, "budget caps emission");
        assert!(!t.is_enabled());
    }

    #[test]
    fn jsonl_sink_emits_one_valid_object_per_line() {
        let buf = SharedBuf::default();
        let mut t = Tracer::enabled().with_sink(Box::new(JsonlSink::new(buf.clone())));
        t.emit(|| ev(1, TraceKind::Issue { class: "Load" }));
        t.emit(|| {
            ev(
                2,
                TraceKind::Transition {
                    unit: Unit::L1,
                    from: "I",
                    to: "S",
                },
            )
        });
        t.emit(|| {
            ev(
                19,
                TraceKind::Complete {
                    class: "GETS",
                    served_from: "Llc",
                    latency: 17,
                },
            )
        });
        t.finish().unwrap();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = Json::parse(line).expect("every line is valid JSON");
            assert!(v.get("t").is_some());
            assert!(v.get("ev").is_some());
        }
        let complete = Json::parse(lines[2]).unwrap();
        assert_eq!(complete.get("ev").and_then(Json::as_str), Some("complete"));
        assert_eq!(complete.get("latency").and_then(Json::as_u64), Some(17));
    }

    #[test]
    fn chrome_sink_is_a_valid_json_array() {
        let buf = SharedBuf::default();
        let mut t = Tracer::enabled().with_sink(Box::new(ChromeTraceSink::new(buf.clone())));
        t.emit(|| ev(1, TraceKind::Issue { class: "Store" }));
        t.emit(|| {
            ev(
                5,
                TraceKind::MsgSend {
                    msg: "GETX",
                    from: Unit::L1,
                    to: Unit::Llc,
                },
            )
        });
        t.emit(|| {
            ev(
                40,
                TraceKind::Complete {
                    class: "GETX",
                    served_from: "Memory",
                    latency: 39,
                },
            )
        });
        t.finish().unwrap();
        let doc = Json::parse(&buf.contents()).expect("chrome trace is valid JSON");
        let events = doc.as_array().expect("top level is an array");
        assert_eq!(events.len(), 3);
        let complete = &events[2];
        assert_eq!(complete.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(complete.get("dur").and_then(Json::as_u64), Some(39));
        assert_eq!(complete.get("ts").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn chrome_sink_transition_names_are_from_to() {
        let buf = SharedBuf::default();
        let mut t = Tracer::enabled().with_sink(Box::new(ChromeTraceSink::new(buf.clone())));
        t.emit(|| {
            ev(
                3,
                TraceKind::Transition {
                    unit: Unit::Llc,
                    from: "S",
                    to: "M",
                },
            )
        });
        t.finish().unwrap();
        let doc = Json::parse(&buf.contents()).unwrap();
        let first = &doc.as_array().unwrap()[0];
        assert_eq!(first.get("name").and_then(Json::as_str), Some("S->M"));
        assert_eq!(
            first.get("tid").and_then(Json::as_u64),
            Some(CHROME_TID_LLC)
        );
    }

    #[test]
    fn finish_is_idempotent_and_disables() {
        let mut t = Tracer::enabled().with_ring(4);
        t.emit(|| ev(1, TraceKind::MshrMerge));
        t.finish().unwrap();
        assert!(!t.is_enabled());
        t.finish().unwrap();
        t.emit(|| panic!("disabled after finish"));
    }

    #[test]
    fn event_display_is_human_readable() {
        let e = ev(
            9,
            TraceKind::Transition {
                unit: Unit::L1,
                from: "E",
                to: "M",
            },
        );
        assert_eq!(e.to_string(), "core0 0x40 L1 E->M");
    }
}
