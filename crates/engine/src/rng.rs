//! Explicitly-seeded, platform-independent random streams.
//!
//! Workload generation must be bit-reproducible so that an experiment rerun
//! produces the same table rows. We therefore implement the tiny SplitMix64
//! generator (used by Java, xoshiro seeding, etc.) rather than depend on the
//! stability of an external RNG's stream.

/// A deterministic 64-bit random stream (SplitMix64).
///
/// SplitMix64 passes BigCrush for this use (driving synthetic workloads) and
/// is two shifts and two multiplies per draw.
///
/// # Example
///
/// ```
/// use sim_engine::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a stream from a seed. Identical seeds yield identical streams.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Derives an independent child stream; used to give each simulated
    /// thread or component its own stream from one experiment seed.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let mixed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(mixed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64 * bound,
        // irrelevant for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

/// Randomized per-hop latency jitter that preserves point-to-point
/// ordering.
///
/// Stress harnesses perturb message timing to widen race windows, but the
/// protocol (like gem5's `MESI_Two_Level`) assumes each source→destination
/// link delivers in send order. `LinkJitter` adds a seeded random extra
/// delay per hop and then clamps the delivery time to be no earlier than
/// the last delivery already scheduled on the same link, so cross-link
/// interleavings vary while each link stays FIFO.
///
/// # Example
///
/// ```
/// use sim_engine::{Cycle, LinkJitter};
/// let mut j = LinkJitter::new(7, 4);
/// let a = j.delay((0, 1), Cycle(100), 10);
/// let b = j.delay((0, 1), Cycle(101), 10);
/// assert!(a >= Cycle(110) && a <= Cycle(114));
/// assert!(b >= a, "same link stays FIFO");
/// ```
#[derive(Debug, Clone)]
pub struct LinkJitter {
    rng: DetRng,
    max_extra: u64,
    last: crate::fxhash::FxHashMap<(u64, u64), crate::cycle::Cycle>,
}

impl LinkJitter {
    /// Creates a jitter model adding `0..=max_extra` cycles per hop.
    pub fn new(seed: u64, max_extra: u64) -> Self {
        LinkJitter {
            rng: DetRng::new(seed),
            max_extra,
            last: crate::fxhash::FxHashMap::default(),
        }
    }

    /// Delivery time for a message sent at `now` over `link` with nominal
    /// latency `base`, after jitter and the link's FIFO clamp.
    pub fn delay(
        &mut self,
        link: (u64, u64),
        now: crate::cycle::Cycle,
        base: u64,
    ) -> crate::cycle::Cycle {
        let extra = if self.max_extra == 0 {
            0
        } else {
            self.rng.below(self.max_extra + 1)
        };
        let mut at = now + crate::cycle::Cycle(base + extra);
        if let Some(&prev) = self.last.get(&link) {
            if at < prev {
                at = prev;
            }
        }
        self.last.insert(link, at);
        at
    }
}

/// Zipf-distributed sampler over `[0, n)`.
///
/// Cache workloads have skewed popularity; SPEC/PARSEC-like profiles use a
/// Zipf(θ) access distribution over their working set. Sampling is by
/// inverse transform over a precomputed CDF (O(log n) per draw).
///
/// # Example
///
/// ```
/// use sim_engine::{DetRng, Zipf};
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = DetRng::new(7);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `[0, n)` with exponent `theta`.
    ///
    /// `theta == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true; `new` rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one value in `[0, len)`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf has no NaNs"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(9);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive_exclusive() {
        let mut rng = DetRng::new(10);
        for _ in 0..10_000 {
            let v = rng.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(12);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = DetRng::new(14);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn fork_gives_distinct_streams() {
        let mut parent = DetRng::new(99);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn zipf_skews_toward_small_indices() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = DetRng::new(15);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Item 0 should be drawn far more often than item 99.
        assert!(counts[0] > counts[99] * 10);
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = DetRng::new(16);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "uniform draw too skewed: {counts:?}");
    }

    #[test]
    fn zipf_domain_bounds() {
        let zipf = Zipf::new(3, 0.8);
        assert_eq!(zipf.len(), 3);
        let mut rng = DetRng::new(17);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }
}
