//! Statistics primitives: counters, histograms, and running summaries.
//!
//! The paper's Figure 6 is a latency CDF; [`Histogram::cdf`] regenerates it
//! directly from simulation samples. IPC, execution-time, and message-count
//! tables are computed from [`Counter`]s and [`RunningStats`].

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sim_engine::Counter;
/// let mut loads = Counter::default();
/// loads.inc();
/// loads.add(2);
/// assert_eq!(loads.get(), 3);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Counter {
    fn from(n: u64) -> Self {
        Counter(n)
    }
}

/// A fixed-bucket histogram of `u64` samples (one bucket per value up to a
/// cap, plus an overflow bucket).
///
/// Coherence-request latencies are small integers (tens of cycles), so an
/// exact per-value histogram is cheap and lets us print the precise CDF the
/// paper plots in Figure 6.
///
/// # Example
///
/// ```
/// use sim_engine::Histogram;
/// let mut h = Histogram::new(100);
/// h.record(17);
/// h.record(17);
/// h.record(43);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.median(), Some(17));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with exact buckets for values `0..cap`; larger
    /// samples land in a single overflow bucket.
    pub fn new(cap: usize) -> Self {
        Histogram {
            buckets: vec![0; cap],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Captures the extrema so a later [`unrecord`](Self::unrecord) can
    /// restore them; take the mark immediately before the paired `record`.
    pub fn mark(&self) -> HistogramMark {
        HistogramMark {
            min: self.min,
            max: self.max,
        }
    }

    /// Reverses one [`record`](Self::record) of `value`, restoring the
    /// extrema from the mark taken just before that record. Only valid in
    /// LIFO order: the most recent un-undone record must be undone first,
    /// otherwise the restored extrema are meaningless.
    pub fn unrecord(&mut self, value: u64, mark: HistogramMark) {
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b -= 1,
            None => self.overflow -= 1,
        }
        self.count -= 1;
        self.sum -= value;
        self.min = mark.min;
        self.max = mark.max;
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of samples that exceeded the bucket cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) over the exact buckets, or `None` when
    /// empty. Overflow samples count as "≥ cap" and are returned as the cap.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (value, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(value as u64);
            }
        }
        Some(self.buckets.len() as u64)
    }

    /// Median sample.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// The empirical CDF as `(value, cumulative_fraction)` points, one per
    /// non-empty bucket — exactly the series plotted in the paper's Fig. 6.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut points = Vec::new();
        if self.count == 0 {
            return points;
        }
        let mut seen = 0u64;
        for (value, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                seen += n;
                points.push((value as u64, seen as f64 / self.count as f64));
            }
        }
        if self.overflow > 0 {
            points.push((self.buckets.len() as u64, 1.0));
        }
        points
    }

    /// The exact-bucket cap this histogram was created with.
    pub fn cap(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over `(value, count)` pairs of non-empty exact buckets,
    /// ascending by value (the overflow bucket is not included; see
    /// [`Histogram::overflow`]).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(value, &n)| (value as u64, n))
    }

    /// Merges another histogram's samples into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket caps differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "merging histograms with different caps"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Pre-record extrema captured by [`Histogram::mark`], consumed by
/// [`Histogram::unrecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramMark {
    min: u64,
    max: u64,
}

/// Running mean/min/max without storing samples (Welford for variance).
///
/// # Example
///
/// ```
/// use sim_engine::RunningStats;
/// let mut s = RunningStats::default();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance, or `None` with fewer than two samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n >= 2).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation, or `None` with fewer than two samples.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new(50);
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(20.0));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
        assert_eq!(h.sum(), 60);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new(10);
        assert_eq!(h.mean(), None);
        assert_eq!(h.median(), None);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(5);
        h.record(100);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), Some(100));
        let cdf = h.cdf();
        assert_eq!(cdf, vec![(5, 1.0)]);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(100);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.0), Some(1));
        // Value 100 overflows a cap-100 histogram, so the top quantile
        // reports the cap itself ("≥ cap").
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn histogram_cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new(64);
        let mut rng = crate::DetRng::new(3);
        for _ in 0..1000 {
            h.record(rng.below(60));
        }
        let cdf = h.cdf();
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(10);
        let mut b = Histogram::new(10);
        a.record(1);
        b.record(3);
        b.record(20); // overflow
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(20));
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "different caps")]
    fn histogram_merge_cap_mismatch_panics() {
        let mut a = Histogram::new(10);
        let b = Histogram::new(20);
        a.merge(&b);
    }

    #[test]
    fn histogram_unrecord_reverses_record_lifo() {
        let mut h = Histogram::new(10);
        h.record(3);
        let reference = h.clone();
        let m1 = h.mark();
        h.record(7);
        let m2 = h.mark();
        h.record(100); // overflow
        h.unrecord(100, m2);
        h.unrecord(7, m1);
        assert_eq!(h, reference);
    }

    #[test]
    fn running_stats_welford() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty_and_single() {
        let mut s = RunningStats::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.variance(), None);
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), None);
    }
}
