//! A named metrics registry: counters, histograms, and running summaries
//! under stable string names, snapshottable to JSON.
//!
//! Simulator components keep their hot-path statistics in typed fields
//! (a map lookup per event would be felt); at reporting time they *export*
//! those fields into a [`MetricsRegistry`], which owns the naming scheme
//! and the JSON snapshot format consumed by `swiftdir-report` and CI.
//!
//! Names follow a dotted hierarchy (`coherence.events.GETS_WP`,
//! `latency.GETX`). Snapshots list metrics sorted by name so two snapshots
//! of the same run are byte-identical.
//!
//! # Example
//!
//! ```
//! use sim_engine::MetricsRegistry;
//! let mut reg = MetricsRegistry::new();
//! reg.counter("events.loads").add(3);
//! reg.histogram("latency", 64).record(17);
//! let snap = reg.snapshot();
//! assert_eq!(snap.get("events.loads").and_then(|m| m.get("value")).and_then(|v| v.as_u64()), Some(3));
//! ```

use crate::json::Json;
use crate::stats::{Counter, Histogram, RunningStats};

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(Counter),
    /// A sample distribution with exact buckets.
    Histogram(Histogram),
    /// A running mean/min/max/stddev summary.
    Stats(RunningStats),
}

impl Metric {
    /// Renders this metric as a JSON object with a `"type"` tag.
    pub fn to_json(&self) -> Json {
        match self {
            Metric::Counter(c) => Json::object([
                ("type", Json::from("counter")),
                ("value", Json::from(c.get())),
            ]),
            Metric::Histogram(h) => {
                let quantile = |q: f64| match h.quantile(q) {
                    Some(v) => Json::from(v),
                    None => Json::Null,
                };
                Json::object([
                    ("type", Json::from("histogram")),
                    ("count", Json::from(h.count())),
                    ("sum", Json::from(h.sum())),
                    ("mean", h.mean().map_or(Json::Null, Json::from)),
                    ("min", h.min().map_or(Json::Null, Json::from)),
                    ("max", h.max().map_or(Json::Null, Json::from)),
                    ("p50", quantile(0.5)),
                    ("p90", quantile(0.9)),
                    ("p99", quantile(0.99)),
                    ("overflow", Json::from(h.overflow())),
                    (
                        "buckets",
                        Json::array(
                            h.nonzero_buckets()
                                .map(|(value, n)| Json::array([Json::from(value), Json::from(n)])),
                        ),
                    ),
                ])
            }
            Metric::Stats(s) => Json::object([
                ("type", Json::from("stats")),
                ("count", Json::from(s.count())),
                ("mean", Json::from(s.mean())),
                ("min", s.min().map_or(Json::Null, Json::from)),
                ("max", s.max().map_or(Json::Null, Json::from)),
                ("stddev", s.stddev().map_or(Json::Null, Json::from)),
            ]),
        }
    }
}

/// Named metrics with deterministic JSON snapshots.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    metrics: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn slot(&mut self, name: &str, fresh: Metric) -> &mut Metric {
        if let Some(i) = self.metrics.iter().position(|(n, _)| n == name) {
            return &mut self.metrics[i].1;
        }
        self.metrics.push((name.to_string(), fresh));
        &mut self.metrics.last_mut().expect("just pushed").1
    }

    /// The counter named `name`, created at zero if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        match self.slot(name, Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// The histogram named `name`, created with `cap` exact buckets if
    /// absent (an existing histogram keeps its original cap).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn histogram(&mut self, name: &str, cap: usize) -> &mut Histogram {
        match self.slot(name, Metric::Histogram(Histogram::new(cap))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// The running summary named `name`, created empty if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn stats(&mut self, name: &str) -> &mut RunningStats {
        match self.slot(name, Metric::Stats(RunningStats::new())) {
            Metric::Stats(s) => s,
            other => panic!("metric {name:?} is not a stats summary: {other:?}"),
        }
    }

    /// Registers a pre-built metric under `name`, replacing any existing
    /// entry (used when exporting typed hot-path fields wholesale).
    pub fn insert(&mut self, name: &str, metric: Metric) {
        if let Some(i) = self.metrics.iter().position(|(n, _)| n == name) {
            self.metrics[i].1 = metric;
        } else {
            self.metrics.push((name.to_string(), metric));
        }
    }

    /// The metric named `name`, if registered.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Iterates over `(name, metric)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// A JSON object of every metric, sorted by name (deterministic).
    pub fn snapshot(&self) -> Json {
        let mut names: Vec<usize> = (0..self.metrics.len()).collect();
        names.sort_by(|&a, &b| self.metrics[a].0.cmp(&self.metrics[b].0));
        Json::Object(
            names
                .into_iter()
                .map(|i| {
                    let (name, metric) = &self.metrics[i];
                    (name.clone(), metric.to_json())
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_lookups() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a").inc();
        reg.counter("a").add(2);
        assert_eq!(reg.counter("a").get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn histogram_snapshot_has_quantiles_and_buckets() {
        let mut reg = MetricsRegistry::new();
        for v in [17, 17, 43] {
            reg.histogram("lat", 64).record(v);
        }
        let snap = reg.snapshot();
        let h = snap.get("lat").expect("lat present");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(h.get("p50").and_then(Json::as_u64), Some(17));
        assert_eq!(h.get("max").and_then(Json::as_u64), Some(43));
        let buckets = h.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 2, "two distinct values");
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        reg.stats("m.mid").push(1.0);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["a.first", "m.mid", "z.last"]);
        assert_eq!(snap.to_string(), reg.snapshot().to_string());
    }

    #[test]
    fn empty_histogram_snapshot_uses_null() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("empty", 8);
        let snap = reg.snapshot();
        let h = snap.get("empty").unwrap();
        assert_eq!(h.get("mean"), Some(&Json::Null));
        assert_eq!(h.get("p50"), Some(&Json::Null));
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("x", 8);
        reg.counter("x");
    }

    #[test]
    fn snapshot_round_trips_through_parser() {
        let mut reg = MetricsRegistry::new();
        reg.counter("events.GETS_WP").add(7);
        reg.histogram("latency.GETX", 128).record(30);
        reg.stats("ipc").push(0.8);
        let text = reg.snapshot().to_string();
        let parsed = Json::parse(&text).expect("snapshot is valid JSON");
        assert_eq!(parsed, reg.snapshot());
    }
}
