//! 2D mesh network-on-chip placement and hop-latency model.
//!
//! Tiles are laid out row-major on the smallest square grid that holds
//! every endpoint: cores first (tile `0..cores`), then directory banks
//! (tile `cores..cores+banks`). A message between two endpoints pays the
//! Manhattan hop count between their tiles times the per-hop latency —
//! XY-routed meshes deliver over exactly that many links, and the model
//! only needs delivery *time*, not per-router occupancy.
//!
//! With `hop_latency == 0` the mesh is a zero-cost crossbar and the
//! calibrated point-to-point latencies ([`LatencyConfig`] in the
//! coherence crate) stand unchanged; a nonzero hop latency adds a
//! deterministic, placement-dependent extra on top of them.

/// One endpoint on the mesh: a core's L1 or a directory bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshEndpoint {
    /// Core `n`'s private L1.
    Core(usize),
    /// Address-sharded LLC/directory bank `n`.
    Bank(usize),
}

/// A 2D mesh placement of `cores + banks` tiles.
///
/// `Copy` on purpose: the struct is three words and is consulted on
/// every message send, so callers keep it by value next to the latency
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshTopology {
    cores: usize,
    side: usize,
    hop_latency: u64,
}

impl MeshTopology {
    /// Places `cores` L1 tiles and `banks` directory-bank tiles on the
    /// smallest square mesh that holds them all.
    pub fn new(cores: usize, banks: usize, hop_latency: u64) -> Self {
        let tiles = cores + banks;
        let mut side = 1usize;
        while side * side < tiles {
            side += 1;
        }
        MeshTopology {
            cores,
            side,
            hop_latency,
        }
    }

    /// Grid side length (the mesh is `side × side`).
    pub fn side(&self) -> usize {
        self.side
    }

    /// Per-hop link latency in cycles.
    pub fn hop_latency(&self) -> u64 {
        self.hop_latency
    }

    /// Row-major tile index of an endpoint.
    fn tile(&self, e: MeshEndpoint) -> usize {
        match e {
            MeshEndpoint::Core(c) => c,
            MeshEndpoint::Bank(b) => self.cores + b,
        }
    }

    /// `(x, y)` coordinates of an endpoint's tile.
    pub fn coords(&self, e: MeshEndpoint) -> (usize, usize) {
        let t = self.tile(e);
        (t % self.side, t / self.side)
    }

    /// Manhattan hop count between two endpoints (0 when co-located).
    pub fn hops(&self, src: MeshEndpoint, dst: MeshEndpoint) -> u64 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (sx.abs_diff(dx) + sy.abs_diff(dy)) as u64
    }

    /// Extra delivery latency over the `src → dst` route.
    #[inline]
    pub fn route_extra(&self, src: MeshEndpoint, dst: MeshEndpoint) -> u64 {
        if self.hop_latency == 0 {
            return 0; // zero-cost crossbar: skip the coordinate math
        }
        self.hops(src, dst) * self.hop_latency
    }

    /// Stable per-link jitter channel key for an endpoint. Core `c`
    /// encodes as `c + 1` and bank `b` as `b << 32`, so bank 0 keeps the
    /// legacy "the LLC" encoding (`0`) from the pre-sharded hierarchy
    /// and single-bank runs keep their jitter streams bit-identical.
    pub fn link_code(e: MeshEndpoint) -> u64 {
        match e {
            MeshEndpoint::Core(c) => c as u64 + 1,
            MeshEndpoint::Bank(b) => (b as u64) << 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_row_major_on_the_smallest_square() {
        let m = MeshTopology::new(4, 2, 1);
        assert_eq!(m.side(), 3); // 6 tiles -> 3x3
        assert_eq!(m.coords(MeshEndpoint::Core(0)), (0, 0));
        assert_eq!(m.coords(MeshEndpoint::Core(2)), (2, 0));
        assert_eq!(m.coords(MeshEndpoint::Bank(0)), (1, 1));
        assert_eq!(m.coords(MeshEndpoint::Bank(1)), (2, 1));
    }

    #[test]
    fn hops_are_manhattan_and_symmetric() {
        let m = MeshTopology::new(64, 8, 2);
        assert_eq!(m.side(), 9); // 72 tiles -> 9x9
        for (a, b) in [
            (MeshEndpoint::Core(0), MeshEndpoint::Bank(7)),
            (MeshEndpoint::Core(63), MeshEndpoint::Bank(0)),
            (MeshEndpoint::Core(5), MeshEndpoint::Core(50)),
        ] {
            assert_eq!(m.hops(a, b), m.hops(b, a));
            assert_eq!(m.route_extra(a, b), m.hops(a, b) * 2);
        }
        assert_eq!(m.hops(MeshEndpoint::Core(3), MeshEndpoint::Core(3)), 0);
    }

    #[test]
    fn zero_hop_latency_is_a_free_crossbar() {
        let m = MeshTopology::new(8, 4, 0);
        assert_eq!(
            m.route_extra(MeshEndpoint::Core(7), MeshEndpoint::Bank(3)),
            0
        );
    }

    #[test]
    fn bank_zero_keeps_the_legacy_link_code() {
        assert_eq!(MeshTopology::link_code(MeshEndpoint::Bank(0)), 0);
        assert_eq!(MeshTopology::link_code(MeshEndpoint::Core(0)), 1);
        assert_ne!(
            MeshTopology::link_code(MeshEndpoint::Bank(1)),
            MeshTopology::link_code(MeshEndpoint::Core(1))
        );
    }
}
