//! Deterministic event-driven simulation kernel.
//!
//! This crate is the substrate every other crate in the SwiftDir
//! reproduction builds on. It provides:
//!
//! * [`Cycle`] — a newtype for simulated time measured in CPU clock cycles.
//! * [`EventQueue`] — a priority queue of `(Cycle, E)` pairs with a
//!   deterministic tie-break, the heart of the discrete-event simulator.
//! * [`fxhash`] — a dependency-free FxHash-style hasher and map aliases
//!   for the simulator's address-keyed hot-path maps.
//! * [`stats`] — counters, histograms (with CDF extraction, used to
//!   regenerate the paper's Figure 6) and running mean/max summaries.
//! * [`rng`] — a small, explicitly-seeded SplitMix64/xoshiro random stream
//!   plus the Zipf sampler workload generators use, so every simulation is
//!   bit-reproducible regardless of platform or dependency versions.
//! * [`trace`] — an optional bounded event trace for debugging protocol
//!   transitions.
//!
//! # Example
//!
//! ```
//! use sim_engine::{Cycle, EventQueue};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Cycle(5), "b");
//! q.schedule(Cycle(3), "a");
//! let (t, e) = q.pop().expect("queue is non-empty");
//! assert_eq!((t, e), (Cycle(3), "a"));
//! ```

pub mod cycle;
pub mod fxhash;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod trace;

pub use cycle::Cycle;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use queue::EventQueue;
pub use rng::{DetRng, Zipf};
pub use stats::{Counter, Histogram, RunningStats};
pub use trace::TraceBuffer;
