//! Deterministic event-driven simulation kernel.
//!
//! This crate is the substrate every other crate in the SwiftDir
//! reproduction builds on. It provides:
//!
//! * [`Cycle`] — a newtype for simulated time measured in CPU clock cycles.
//! * [`EventQueue`] — a priority queue of `(Cycle, E)` pairs with a
//!   deterministic tie-break, the heart of the discrete-event simulator.
//! * [`fxhash`] — a dependency-free FxHash-style hasher and map aliases
//!   for the simulator's address-keyed hot-path maps.
//! * [`stats`] — counters, histograms (with CDF extraction, used to
//!   regenerate the paper's Figure 6) and running mean/max summaries.
//! * [`rng`] — a small, explicitly-seeded SplitMix64/xoshiro random stream
//!   plus the Zipf sampler workload generators use, so every simulation is
//!   bit-reproducible regardless of platform or dependency versions.
//! * [`trace`] — a bounded ring of timestamped records, the storage behind
//!   the tracer's recent-history dumps.
//! * [`tracer`] — the structured protocol tracer: typed [`TraceEvent`]s,
//!   pluggable sinks (bounded ring, JSONL, Chrome `trace_event`), and a
//!   closure-deferred emit path that costs one branch when disabled.
//! * [`metrics`] — a named registry of counters/histograms/summaries with
//!   deterministic JSON snapshots.
//! * [`json`] — a dependency-free JSON model, writer, and parser used for
//!   every machine-readable artifact the simulator produces.
//! * [`progress`] — campaign-level telemetry: shared atomic counters,
//!   scoped phase timers, memory gauges with high-water marks, and the
//!   `"swiftdir.progress.v1"` heartbeat sampler long-running campaigns
//!   stream to a JSONL sink.
//!
//! # Example
//!
//! ```
//! use sim_engine::{Cycle, EventQueue};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Cycle(5), "b");
//! q.schedule(Cycle(3), "a");
//! let (t, e) = q.pop().expect("queue is non-empty");
//! assert_eq!((t, e), (Cycle(3), "a"));
//! ```

pub mod cycle;
pub mod fxhash;
pub mod json;
pub mod mesh;
pub mod metrics;
pub mod progress;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod tracer;

pub use cycle::Cycle;
pub use fxhash::{map_heap_bytes, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::{Json, JsonError};
pub use mesh::{MeshEndpoint, MeshTopology};
pub use metrics::{Metric, MetricsRegistry};
pub use progress::{
    CampaignCounters, Gauge, GaugeSnapshot, MemGauge, PhaseSpan, ProgressRecord, ProgressSampler,
    WorkerSlot, WorkerSnapshot, PROGRESS_SCHEMA, PROGRESS_SCHEMA_PREFIX,
};
pub use queue::{Chooser, EventQueue, FifoChooser, Pending, PopOrigin, QueueMark};
pub use rng::{DetRng, LinkJitter, Zipf};
pub use stats::{Counter, Histogram, HistogramMark, RunningStats};
pub use trace::TraceBuffer;
pub use tracer::{ChromeTraceSink, JsonlSink, TraceEvent, TraceKind, TraceSink, Tracer, Unit};
