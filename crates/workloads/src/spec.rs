//! SPEC CPU 2017-like single-threaded profiles (paper Figure 7).
//!
//! Each benchmark is a named [`SynthParams`] profile. Parameters follow
//! the benchmarks' published characterizations qualitatively: `mcf`,
//! `lbm`, `fotonik3d` are memory-bound with poor locality; `exchange2`,
//! `leela`, `deepsjeng` are compute/branch-bound with tiny footprints;
//! `blender`/`povray` are store-light renderers; `gcc`/`perlbench` mix
//! pointer chasing with moderate stores and touch shared library code.

use crate::synth::SynthParams;

/// The 23 SPECrate 2017 Integer + Floating Point benchmarks the paper's
/// Figure 7 reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are benchmark names
pub enum SpecBenchmark {
    Perlbench,
    Gcc,
    Mcf,
    Omnetpp,
    Xalancbmk,
    X264,
    Deepsjeng,
    Leela,
    Exchange2,
    Xz,
    Bwaves,
    Cactubssn,
    Namd,
    Parest,
    Povray,
    Lbm,
    Wrf,
    Blender,
    Cam4,
    Imagick,
    Nab,
    Fotonik3d,
    Roms,
}

impl SpecBenchmark {
    /// All benchmarks in Figure 7's order.
    pub const ALL: [SpecBenchmark; 23] = [
        SpecBenchmark::Perlbench,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
        SpecBenchmark::Omnetpp,
        SpecBenchmark::Xalancbmk,
        SpecBenchmark::X264,
        SpecBenchmark::Deepsjeng,
        SpecBenchmark::Leela,
        SpecBenchmark::Exchange2,
        SpecBenchmark::Xz,
        SpecBenchmark::Bwaves,
        SpecBenchmark::Cactubssn,
        SpecBenchmark::Namd,
        SpecBenchmark::Parest,
        SpecBenchmark::Povray,
        SpecBenchmark::Lbm,
        SpecBenchmark::Wrf,
        SpecBenchmark::Blender,
        SpecBenchmark::Cam4,
        SpecBenchmark::Imagick,
        SpecBenchmark::Nab,
        SpecBenchmark::Fotonik3d,
        SpecBenchmark::Roms,
    ];

    /// The benchmark's display name (SPEC naming).
    pub fn name(&self) -> &'static str {
        match self {
            SpecBenchmark::Perlbench => "perlbench",
            SpecBenchmark::Gcc => "gcc",
            SpecBenchmark::Mcf => "mcf",
            SpecBenchmark::Omnetpp => "omnetpp",
            SpecBenchmark::Xalancbmk => "xalancbmk",
            SpecBenchmark::X264 => "x264",
            SpecBenchmark::Deepsjeng => "deepsjeng",
            SpecBenchmark::Leela => "leela",
            SpecBenchmark::Exchange2 => "exchange2",
            SpecBenchmark::Xz => "xz",
            SpecBenchmark::Bwaves => "bwaves",
            SpecBenchmark::Cactubssn => "cactuBSSN",
            SpecBenchmark::Namd => "namd",
            SpecBenchmark::Parest => "parest",
            SpecBenchmark::Povray => "povray",
            SpecBenchmark::Lbm => "lbm",
            SpecBenchmark::Wrf => "wrf",
            SpecBenchmark::Blender => "blender",
            SpecBenchmark::Cam4 => "cam4",
            SpecBenchmark::Imagick => "imagick",
            SpecBenchmark::Nab => "nab",
            SpecBenchmark::Fotonik3d => "fotonik3d",
            SpecBenchmark::Roms => "roms",
        }
    }

    /// A stable per-benchmark seed (so reruns reproduce Figure 7 exactly).
    pub fn seed(&self) -> u64 {
        // Position in ALL, offset so seed 0 is never used.
        Self::ALL.iter().position(|b| b == self).unwrap() as u64 + 101
    }

    /// The benchmark's synthetic profile, scaled to `instructions`.
    pub fn params(&self, instructions: u64) -> SynthParams {
        let base = SynthParams::balanced(instructions);
        // (private KiB, load, store, shared-load frac, WAR frac, locality, compute)
        let (ws_kib, ld, st, sh, war, loc, comp) = match self {
            SpecBenchmark::Perlbench => (384, 0.34, 0.16, 0.22, 0.14, 0.95, 1),
            SpecBenchmark::Gcc => (512, 0.33, 0.15, 0.20, 0.12, 0.90, 1),
            SpecBenchmark::Mcf => (4096, 0.42, 0.10, 0.04, 0.06, 0.40, 1),
            SpecBenchmark::Omnetpp => (2048, 0.36, 0.14, 0.10, 0.10, 0.60, 1),
            SpecBenchmark::Xalancbmk => (1024, 0.38, 0.12, 0.18, 0.08, 0.70, 1),
            SpecBenchmark::X264 => (768, 0.30, 0.14, 0.08, 0.16, 0.85, 2),
            SpecBenchmark::Deepsjeng => (192, 0.26, 0.10, 0.06, 0.10, 1.00, 2),
            SpecBenchmark::Leela => (128, 0.24, 0.08, 0.06, 0.08, 1.00, 2),
            SpecBenchmark::Exchange2 => (64, 0.18, 0.08, 0.02, 0.06, 1.10, 2),
            SpecBenchmark::Xz => (1536, 0.34, 0.16, 0.06, 0.18, 0.65, 1),
            SpecBenchmark::Bwaves => (3072, 0.40, 0.14, 0.02, 0.20, 0.55, 1),
            SpecBenchmark::Cactubssn => (2048, 0.38, 0.14, 0.02, 0.16, 0.60, 1),
            SpecBenchmark::Namd => (512, 0.30, 0.10, 0.04, 0.12, 0.90, 2),
            SpecBenchmark::Parest => (1024, 0.34, 0.12, 0.04, 0.12, 0.75, 1),
            SpecBenchmark::Povray => (256, 0.28, 0.06, 0.10, 0.04, 0.95, 2),
            SpecBenchmark::Lbm => (4096, 0.40, 0.20, 0.02, 0.22, 0.45, 1),
            SpecBenchmark::Wrf => (2560, 0.36, 0.15, 0.03, 0.17, 0.60, 1),
            SpecBenchmark::Blender => (768, 0.30, 0.07, 0.08, 0.05, 0.85, 2),
            SpecBenchmark::Cam4 => (1792, 0.35, 0.13, 0.03, 0.14, 0.65, 1),
            SpecBenchmark::Imagick => (512, 0.30, 0.12, 0.04, 0.15, 0.90, 2),
            SpecBenchmark::Nab => (384, 0.30, 0.11, 0.04, 0.12, 0.90, 2),
            SpecBenchmark::Fotonik3d => (3584, 0.41, 0.13, 0.02, 0.14, 0.50, 1),
            SpecBenchmark::Roms => (3072, 0.39, 0.14, 0.02, 0.15, 0.55, 1),
        };
        SynthParams {
            private_bytes: ws_kib * 1024,
            load_ratio: ld,
            store_ratio: st,
            shared_load_fraction: sh,
            war_fraction: war,
            locality: loc,
            compute_cycles: comp,
            ..base
        }
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_benchmarks() {
        assert_eq!(SpecBenchmark::ALL.len(), 23);
        let names: std::collections::HashSet<&str> =
            SpecBenchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 23, "names unique");
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let seeds: std::collections::HashSet<u64> =
            SpecBenchmark::ALL.iter().map(|b| b.seed()).collect();
        assert_eq!(seeds.len(), 23);
        assert_eq!(SpecBenchmark::Perlbench.seed(), 101);
    }

    #[test]
    fn profiles_scale_with_instructions() {
        let p = SpecBenchmark::Mcf.params(1_000);
        assert_eq!(p.instructions, 1_000);
        assert_eq!(p.private_bytes, 4096 * 1024);
        let q = SpecBenchmark::Mcf.params(2_000);
        assert_eq!(q.instructions, 2_000);
    }

    #[test]
    fn ratios_are_probabilities() {
        for b in SpecBenchmark::ALL {
            let p = b.params(100);
            assert!(p.load_ratio + p.store_ratio < 1.0, "{b}: ratios sum < 1");
            assert!(p.shared_load_fraction <= 1.0);
            assert!(p.war_fraction <= 1.0);
        }
    }
}
