//! Workload generators reproducing the paper's evaluation inputs.
//!
//! The paper evaluates on SPEC CPU 2017, PARSEC 3.0, hand-built
//! multi-threaded read-only applications, and hand-built write-after-read
//! intensive applications. We do not have the licensed suites, so (per the
//! substitution documented in `DESIGN.md`) each benchmark is modelled as a
//! **named synthetic profile**: a deterministic instruction stream with the
//! benchmark's approximate working-set size, load/store mix, locality, and
//! sharing behaviour. The profile parameters are what drive the paper's
//! protocol-level effects — write-after-read frequency (silent-upgrade
//! sensitivity), LLC pressure, and cross-thread sharing of read-only vs
//! written data — so the *shape* of the protocol comparisons survives the
//! substitution even though absolute IPC does not.
//!
//! * [`synth`] — the parameterized generator ([`SynthParams`],
//!   [`SynthStream`]) everything else builds on.
//! * [`spec`] — the 23 SPECrate 2017 Int+FP benchmarks (Figure 7).
//! * [`parsec`] — the 13 PARSEC 3.0 benchmarks' ROIs (Figure 8).
//! * [`readonly`] — the two-thread shared-data re-access sweep (Figure 9).
//! * [`war`] — array assignment / insertion / sorting (Figure 10).

pub mod parsec;
pub mod readonly;
pub mod spec;
pub mod synth;
pub mod war;

pub use parsec::ParsecBenchmark;
pub use readonly::ReadOnlySweep;
pub use spec::SpecBenchmark;
pub use synth::{SynthParams, SynthStream, WorkloadRegions};
pub use war::{WarApp, WarPrograms};
