//! Write-after-read intensive applications (paper §V-E, Figure 10).
//!
//! "We compile three typical applications with intensive write-after-read
//! operations — array assignment, array insertion, and array sorting."
//! Every element is read and then written shortly after, which is exactly
//! the pattern the E state's silent upgrade accelerates: under MESI and
//! SwiftDir the store is a 1-cycle L1 transition, under S-MESI it is an
//! Upgrade/ACK round trip to the LLC.

use sim_engine::DetRng;
use swiftdir_core::{ProcessId, System};
use swiftdir_cpu::{Instr, Program};
use swiftdir_mmu::{MapFlags, Prot, VirtAddr};

/// The three Figure 10 applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarApp {
    /// `b[i] = f(a[i])`: load each element, store the result.
    ArrayAssignment,
    /// Insertion into a sorted array: scan back reading elements and
    /// shifting them right (read-then-write per slot).
    ArrayInsertion,
    /// In-place sorting (selection-style): read pairs, write swaps.
    ArraySorting,
}

impl WarApp {
    /// All three, in Figure 10's order.
    pub const ALL: [WarApp; 3] = [
        WarApp::ArrayAssignment,
        WarApp::ArrayInsertion,
        WarApp::ArraySorting,
    ];

    /// Display name (as labelled in Figure 10).
    pub fn name(&self) -> &'static str {
        match self {
            WarApp::ArrayAssignment => "array assignment",
            WarApp::ArrayInsertion => "array insertion",
            WarApp::ArraySorting => "array sorting",
        }
    }

    /// Builds the application over an array of `elements` elements (one
    /// cache line each — coherence transactions are per line) mapped into
    /// `pid`. Returns a warm-up pass plus the measured program.
    ///
    /// The warm-up walks the array once so the measured region is the
    /// steady state the paper times (LLC-resident data, DRAM out of the
    /// picture). The write-after-read effect additionally requires lines
    /// to *leave the L1* between rounds (otherwise stores hit an M line
    /// and no E→M transition happens again), so choose `elements` > 512
    /// (the L1 holds 512 lines).
    pub fn build(&self, sys: &mut System, pid: ProcessId, elements: u64) -> WarPrograms {
        assert!(elements >= 2, "need at least two elements");
        let bytes = elements * 64; // one line per element
        let base = sys
            .process_mut(pid)
            .mmap(bytes, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .expect("array mapping");
        let at = |i: u64| VirtAddr(base.0 + i * 64);
        let warmup: Program = (0..elements).map(|i| Instr::load(at(i))).collect();
        let mut prog = Program::new();
        match self {
            WarApp::ArrayAssignment => {
                // for pass in 0..2: for i: tmp = a[i]; a[i] = f(tmp).
                for _pass in 0..2 {
                    for i in 0..elements {
                        prog.push(Instr::load(at(i)));
                        prog.push(Instr::compute(1));
                        prog.push(Instr::store(at(i)));
                    }
                }
            }
            WarApp::ArrayInsertion => {
                // Repeated insertion into a sorted prefix: scan back
                // reading a[j] and shifting it to a[j+1]. The shift window
                // grows with the prefix up to a cap just above the L1
                // capacity, so in the steady state every shifted line has
                // been evicted since its last write — the densest
                // write-after-read pattern of the three apps (the paper's
                // Figure 10 shows insertion with the largest S-MESI gap
                // out-of-order).
                let cap = 640; // lines; > the 512-line L1
                for i in 1..elements {
                    let window = cap.min(i);
                    for k in 0..window {
                        let j = i - 1 - k;
                        prog.push(Instr::load(at(j)));
                        prog.push(Instr::store(at(j + 1)));
                    }
                    prog.push(Instr::store(at(i - window)));
                }
            }
            WarApp::ArraySorting => {
                // Bubble-sort flavour: passes of adjacent compares (two
                // loads) with a swap (two stores) on a fraction of the
                // pairs. Stores are a smaller fraction of the mix than in
                // assignment/insertion, so the store-side protocol
                // difference matters least here — Figure 10 shows sorting
                // with the smallest S-MESI gap.
                let mut rng = DetRng::new(0x5047_u64);
                for _pass in 0..2 {
                    for j in 0..elements - 1 {
                        prog.push(Instr::load(at(j)));
                        prog.push(Instr::load(at(j + 1)));
                        prog.push(Instr::compute(1));
                        if rng.chance(0.3) {
                            prog.push(Instr::store(at(j)));
                            prog.push(Instr::store(at(j + 1)));
                        }
                    }
                }
            }
        }
        WarPrograms {
            warmup,
            measured: prog,
        }
    }
}

/// The two phases of a Figure 10 run.
#[derive(Debug, Clone)]
pub struct WarPrograms {
    /// One untimed pass over the array (brings it into the LLC).
    pub warmup: Program,
    /// The measured write-after-read-intensive region.
    pub measured: Program,
}

impl std::fmt::Display for WarApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftdir_coherence::ProtocolKind;
    use swiftdir_core::SystemConfig;
    use swiftdir_cpu::CpuModel;

    fn run_sized(app: WarApp, protocol: ProtocolKind, model: CpuModel, elements: u64) -> u64 {
        let mut sys = System::new(
            SystemConfig::builder()
                .cores(1)
                .protocol(protocol)
                .cpu_model(model)
                .build(),
        );
        let pid = sys.spawn_process();
        let progs = app.build(&mut sys, pid, elements);
        sys.run_thread_program(pid, 0, progs.warmup.instrs().to_vec());
        sys.run_to_completion();
        sys.run_thread_program(pid, 0, progs.measured.instrs().to_vec());
        sys.run_to_completion().roi_cycles()
    }

    #[test]
    fn smesi_slower_on_all_war_apps_in_order() {
        for app in WarApp::ALL {
            let n = 600; // must exceed the 512-line L1 for steady-state WAR
            let mesi = run_sized(app, ProtocolKind::Mesi, CpuModel::TimingSimple, n);
            let swift = run_sized(app, ProtocolKind::SwiftDir, CpuModel::TimingSimple, n);
            let smesi = run_sized(app, ProtocolKind::SMesi, CpuModel::TimingSimple, n);
            assert!(
                smesi > mesi,
                "{app}: S-MESI must pay the upgrade round trips: {smesi} vs {mesi}"
            );
            let rel = (swift as f64 - mesi as f64).abs() / mesi as f64;
            assert!(rel < 0.02, "{app}: SwiftDir ≈ MESI: {swift} vs {mesi}");
        }
    }

    #[test]
    fn ooo_amplifies_the_gap() {
        // Steady state needs the array to exceed the 512-line L1.
        let app = WarApp::ArrayAssignment;
        let n = 1024;
        let inorder_ratio = run_sized(app, ProtocolKind::SMesi, CpuModel::TimingSimple, n) as f64
            / run_sized(app, ProtocolKind::SwiftDir, CpuModel::TimingSimple, n) as f64;
        let ooo_ratio = run_sized(app, ProtocolKind::SMesi, CpuModel::DerivO3, n) as f64
            / run_sized(app, ProtocolKind::SwiftDir, CpuModel::DerivO3, n) as f64;
        assert!(
            ooo_ratio > inorder_ratio,
            "paper Fig. 10: OoO slowdown ({ooo_ratio:.2}x) exceeds in-order ({inorder_ratio:.2}x)"
        );
        assert!(
            ooo_ratio > 1.2,
            "OoO S-MESI slowdown is substantial: {ooo_ratio:.2}x"
        );
    }

    #[test]
    fn programs_are_war_shaped() {
        let mut sys = System::new(
            SystemConfig::builder()
                .cores(1)
                .protocol(ProtocolKind::Mesi)
                .cpu_model(CpuModel::TimingSimple)
                .build(),
        );
        let pid = sys.spawn_process();
        for app in WarApp::ALL {
            let prog = app.build(&mut sys, pid, 64).measured;
            let stores = prog
                .instrs()
                .iter()
                .filter(|i| matches!(i, Instr::Store(_)))
                .count();
            let loads = prog
                .instrs()
                .iter()
                .filter(|i| matches!(i, Instr::Load(_)))
                .count();
            assert!(stores > 0 && loads > 0, "{app} mixes loads and stores");
        }
    }

    #[test]
    #[should_panic(expected = "two elements")]
    fn tiny_array_rejected() {
        let mut sys = System::new(SystemConfig::builder().cores(1).build());
        let pid = sys.spawn_process();
        WarApp::ArrayAssignment.build(&mut sys, pid, 1);
    }
}
