//! PARSEC 3.0-like multi-threaded ROI profiles (paper Figure 8).
//!
//! Each benchmark spawns four threads (one per core, as the paper's 4-core
//! runs do). Threads share one read-only region (the input data set /
//! shared library code — write-protected memory) and one read-write shared
//! region (the concurrent data structure), plus a private working set per
//! thread. The sharing mix follows each benchmark's published
//! characterization: `blackscholes`/`swaptions` are embarrassingly
//! parallel (little sharing), `dedup`/`ferret` are pipeline-parallel with
//! heavy queue traffic, `canneal`/`fluidanimate` write-share aggressively.

use swiftdir_core::{ProcessId, System};
use swiftdir_cpu::Instr;
use swiftdir_mmu::{MapFlags, Prot, VirtAddr};

use crate::synth::{SynthParams, SynthStream, WorkloadRegions};

/// The 13 PARSEC 3.0 benchmarks of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are benchmark names
pub enum ParsecBenchmark {
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Raytrace,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
}

/// One thread's generated instruction stream plus its core assignment.
pub struct ParsecThread {
    /// Core to pin the thread to.
    pub core: usize,
    /// The generated stream.
    pub stream: ParsecStream,
}

/// A PARSEC thread stream: a private synthetic stream interleaved with
/// accesses to the read-write shared region.
#[derive(Debug, Clone)]
pub struct ParsecStream {
    inner: SynthStream,
    shared_rw_base: VirtAddr,
    shared_rw_blocks: u64,
    /// Probability of diverting an instruction into a shared-RW access.
    rw_share: f64,
    /// Probability that a shared-RW access is a store.
    rw_store: f64,
    rng: sim_engine::DetRng,
}

impl swiftdir_cpu::InstrStream for ParsecStream {
    fn next_instr(&mut self) -> Option<Instr> {
        let instr = self.inner.next_instr()?;
        if self.rng.chance(self.rw_share) {
            let va = VirtAddr(self.shared_rw_base.0 + self.rng.below(self.shared_rw_blocks) * 64);
            if self.rng.chance(self.rw_store) {
                return Some(Instr::store(va));
            }
            return Some(Instr::load(va));
        }
        Some(instr)
    }

    fn remaining_hint(&self) -> Option<u64> {
        self.inner.remaining_hint()
    }
}

impl ParsecBenchmark {
    /// All benchmarks in Figure 8's order.
    pub const ALL: [ParsecBenchmark; 13] = [
        ParsecBenchmark::Blackscholes,
        ParsecBenchmark::Bodytrack,
        ParsecBenchmark::Canneal,
        ParsecBenchmark::Dedup,
        ParsecBenchmark::Facesim,
        ParsecBenchmark::Ferret,
        ParsecBenchmark::Fluidanimate,
        ParsecBenchmark::Freqmine,
        ParsecBenchmark::Raytrace,
        ParsecBenchmark::Streamcluster,
        ParsecBenchmark::Swaptions,
        ParsecBenchmark::Vips,
        ParsecBenchmark::X264,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ParsecBenchmark::Blackscholes => "blackscholes",
            ParsecBenchmark::Bodytrack => "bodytrack",
            ParsecBenchmark::Canneal => "canneal",
            ParsecBenchmark::Dedup => "dedup",
            ParsecBenchmark::Facesim => "facesim",
            ParsecBenchmark::Ferret => "ferret",
            ParsecBenchmark::Fluidanimate => "fluidanimate",
            ParsecBenchmark::Freqmine => "freqmine",
            ParsecBenchmark::Raytrace => "raytrace",
            ParsecBenchmark::Streamcluster => "streamcluster",
            ParsecBenchmark::Swaptions => "swaptions",
            ParsecBenchmark::Vips => "vips",
            ParsecBenchmark::X264 => "x264",
        }
    }

    /// Stable seed.
    pub fn seed(&self) -> u64 {
        Self::ALL.iter().position(|b| b == self).unwrap() as u64 + 501
    }

    /// `(per-thread profile, rw_share, rw_store)` for this benchmark.
    fn profile(&self, instructions_per_thread: u64) -> (SynthParams, f64, f64) {
        let base = SynthParams::balanced(instructions_per_thread);
        // (private KiB, load, store, shared-RO frac, WAR, locality, rw_share, rw_store)
        let (ws, ld, st, sh, war, loc, rw, rws) = match self {
            ParsecBenchmark::Blackscholes => (128, 0.30, 0.08, 0.30, 0.06, 0.9, 0.01, 0.2),
            ParsecBenchmark::Bodytrack => (256, 0.32, 0.10, 0.25, 0.08, 0.8, 0.04, 0.3),
            ParsecBenchmark::Canneal => (2048, 0.40, 0.14, 0.05, 0.10, 0.5, 0.12, 0.5),
            ParsecBenchmark::Dedup => (1024, 0.34, 0.16, 0.10, 0.16, 0.6, 0.10, 0.5),
            ParsecBenchmark::Facesim => (1536, 0.36, 0.14, 0.08, 0.12, 0.7, 0.05, 0.4),
            ParsecBenchmark::Ferret => (512, 0.33, 0.12, 0.20, 0.10, 0.7, 0.08, 0.4),
            ParsecBenchmark::Fluidanimate => (768, 0.35, 0.15, 0.05, 0.14, 0.7, 0.10, 0.5),
            ParsecBenchmark::Freqmine => (1024, 0.36, 0.12, 0.15, 0.10, 0.6, 0.06, 0.3),
            ParsecBenchmark::Raytrace => (512, 0.32, 0.08, 0.30, 0.05, 0.8, 0.02, 0.2),
            ParsecBenchmark::Streamcluster => (1536, 0.38, 0.10, 0.10, 0.08, 0.5, 0.06, 0.3),
            ParsecBenchmark::Swaptions => (128, 0.26, 0.10, 0.10, 0.10, 1.0, 0.01, 0.3),
            ParsecBenchmark::Vips => (512, 0.32, 0.12, 0.20, 0.10, 0.8, 0.04, 0.3),
            ParsecBenchmark::X264 => (768, 0.30, 0.14, 0.12, 0.14, 0.8, 0.05, 0.4),
        };
        let params = SynthParams {
            private_bytes: ws * 1024,
            load_ratio: ld,
            store_ratio: st,
            shared_load_fraction: sh,
            war_fraction: war,
            locality: loc,
            ..base
        };
        (params, rw, rws)
    }

    /// Maps this benchmark's regions into `pid` and builds the four thread
    /// streams (cores 0–3). The **read-only shared** region is mapped once
    /// and read by all threads (write-protected data); the **read-write
    /// shared** region is a writable anonymous mapping all threads touch.
    pub fn build_threads(
        &self,
        sys: &mut System,
        pid: ProcessId,
        instructions_per_thread: u64,
    ) -> Vec<ParsecThread> {
        let (params, rw_share, rw_store) = self.profile(instructions_per_thread);
        let threads = 4;

        // One shared read-only region for all threads.
        let shared_ro = sys
            .process_mut(pid)
            .mmap(params.shared_ro_bytes, Prot::READ, MapFlags::PRIVATE)
            .expect("shared RO region");
        // One shared read-write region.
        let rw_bytes: u64 = 128 * 1024;
        let shared_rw = sys
            .process_mut(pid)
            .mmap(rw_bytes, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
            .expect("shared RW region");

        (0..threads)
            .map(|t| {
                // Per-thread private region; shared regions reused.
                let private = sys
                    .process_mut(pid)
                    .mmap(
                        params.private_bytes.max(4096),
                        Prot::READ | Prot::WRITE,
                        MapFlags::PRIVATE,
                    )
                    .expect("private region");
                let regions = WorkloadRegions {
                    private_base: private,
                    private_bytes: params.private_bytes.max(4096),
                    shared_base: Some(shared_ro),
                    shared_bytes: params.shared_ro_bytes,
                };
                let mut rng = sim_engine::DetRng::new(self.seed());
                let thread_rng = rng.fork(t as u64);
                ParsecThread {
                    core: t,
                    stream: ParsecStream {
                        inner: SynthStream::new(params, regions, self.seed() * 13 + t as u64),
                        shared_rw_base: shared_rw,
                        shared_rw_blocks: rw_bytes / 64,
                        rw_share,
                        rw_store,
                        rng: thread_rng,
                    },
                }
            })
            .collect()
    }
}

impl std::fmt::Display for ParsecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftdir_coherence::ProtocolKind;
    use swiftdir_core::SystemConfig;
    use swiftdir_cpu::CpuModel;

    #[test]
    fn thirteen_benchmarks_unique() {
        assert_eq!(ParsecBenchmark::ALL.len(), 13);
        let names: std::collections::HashSet<&str> =
            ParsecBenchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn roi_runs_on_four_cores() {
        let mut sys = System::new(
            SystemConfig::builder()
                .cores(4)
                .protocol(ProtocolKind::SwiftDir)
                .cpu_model(CpuModel::TimingSimple)
                .build(),
        );
        let pid = sys.spawn_process();
        let threads = ParsecBenchmark::Blackscholes.build_threads(&mut sys, pid, 1_000);
        assert_eq!(threads.len(), 4);
        for t in threads {
            sys.run_thread_stream(pid, t.core, t.stream);
        }
        let stats = sys.run_to_completion();
        assert_eq!(stats.threads.len(), 4);
        assert_eq!(stats.instructions(), 4_000);
        assert!(stats.roi_cycles() > 0);
    }

    #[test]
    fn write_sharing_causes_invalidations() {
        let mut sys = System::new(
            SystemConfig::builder()
                .cores(4)
                .protocol(ProtocolKind::Mesi)
                .cpu_model(CpuModel::TimingSimple)
                .build(),
        );
        let pid = sys.spawn_process();
        // canneal write-shares heavily.
        let threads = ParsecBenchmark::Canneal.build_threads(&mut sys, pid, 2_000);
        for t in threads {
            sys.run_thread_stream(pid, t.core, t.stream);
        }
        let stats = sys.run_to_completion();
        assert!(
            stats
                .hierarchy
                .event(swiftdir_coherence::CoherenceEvent::Inv)
                > 0,
            "write sharing must invalidate"
        );
    }
}
