//! The multi-threaded read-only benchmark of paper §V-D (Figure 9).
//!
//! "We construct a two-threaded application and pin the threads to
//! respective cores. We first run one thread to access a series of
//! exploitable shared data. Then we run the other cross-core thread to
//! re-access the accessed data through remote loads." The re-access is
//! the measured region: MESI pays the owner-forwarding E→S path, while
//! S-MESI and SwiftDir serve it from the LLC.

use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{System, SystemConfig};
use swiftdir_cpu::{CpuModel, Instr};
use swiftdir_mmu::{LibraryImage, SegmentKind, VirtAddr, PAGE_SIZE};

/// The Figure 9 experiment: `amount` exploitable shared cache lines,
/// accessed by thread 0 then re-accessed by thread 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOnlySweep {
    /// Number of shared data items (cache lines), 1 000–5 000 in Fig. 9.
    pub amount: u64,
}

/// Result of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepResult {
    /// Cycles of the measured re-access phase.
    pub reaccess_cycles: u64,
    /// Cycles of the (unmeasured) first-access phase.
    pub first_access_cycles: u64,
}

impl ReadOnlySweep {
    /// A sweep point over `amount` shared lines.
    pub fn new(amount: u64) -> Self {
        assert!(amount > 0, "empty sweep");
        ReadOnlySweep { amount }
    }

    /// Runs the two-phase experiment under `protocol` and returns the
    /// phase timings.
    pub fn run(&self, protocol: ProtocolKind) -> SweepResult {
        let mut sys = System::new(
            SystemConfig::builder()
                .cores(2)
                .protocol(protocol)
                .cpu_model(CpuModel::TimingSimple)
                .build(),
        );
        // Both threads belong to one process here; the shared data is a
        // read-only library mapping (write-protected), the exploitable
        // kind. One line per item.
        let pid = sys.spawn_process();
        let pages = (self.amount * 64).div_ceil(PAGE_SIZE);
        let lib = LibraryImage::synthetic("libdata.so", 0, pages, 0);
        let (loaded, _) = sys
            .process_mut(pid)
            .load_library(&lib, None)
            .expect("library mapping");
        let base = loaded.base_of(SegmentKind::Rodata).expect("rodata");

        let line = |i: u64| VirtAddr(base.0 + i * 64);
        let program: Vec<Instr> = (0..self.amount).map(|i| Instr::load(line(i))).collect();

        // Phase 1: thread on core 0 walks the shared data (E under MESI,
        // S under SwiftDir).
        sys.run_thread_program(pid, 0, program.clone());
        let phase1 = sys.run_to_completion();

        // Phase 2 (measured): thread on core 1 re-accesses everything.
        sys.run_thread_program(pid, 1, program);
        let phase2 = sys.run_to_completion();

        SweepResult {
            reaccess_cycles: phase2.roi_cycles(),
            first_access_cycles: phase1.roi_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesi_reaccess_slower_than_swiftdir() {
        let sweep = ReadOnlySweep::new(500);
        let mesi = sweep.run(ProtocolKind::Mesi);
        let swift = sweep.run(ProtocolKind::SwiftDir);
        let smesi = sweep.run(ProtocolKind::SMesi);
        // MESI re-access pays owner forwarding per line (+26 cycles);
        // SwiftDir and S-MESI serve from the LLC.
        assert!(
            mesi.reaccess_cycles > swift.reaccess_cycles,
            "MESI {} vs SwiftDir {}",
            mesi.reaccess_cycles,
            swift.reaccess_cycles
        );
        let rel = (smesi.reaccess_cycles as f64 - swift.reaccess_cycles as f64).abs()
            / (swift.reaccess_cycles as f64);
        assert!(
            rel < 0.05,
            "S-MESI and SwiftDir comparable: {} vs {}",
            smesi.reaccess_cycles,
            swift.reaccess_cycles
        );
    }

    #[test]
    fn reaccess_scales_with_amount() {
        let small = ReadOnlySweep::new(200).run(ProtocolKind::SwiftDir);
        let large = ReadOnlySweep::new(800).run(ProtocolKind::SwiftDir);
        assert!(large.reaccess_cycles > small.reaccess_cycles * 3);
    }

    #[test]
    #[should_panic(expected = "empty sweep")]
    fn zero_amount_rejected() {
        ReadOnlySweep::new(0);
    }
}
