//! The parameterized synthetic workload generator.

use sim_engine::{DetRng, Zipf};
use swiftdir_core::{ProcessId, System};
use swiftdir_cpu::{Instr, InstrStream};
use swiftdir_mmu::{MapFlags, Prot, VirtAddr};

/// Parameters of one synthetic workload profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// Instructions to generate.
    pub instructions: u64,
    /// Private (read-write, heap-like) working set in bytes.
    pub private_bytes: u64,
    /// Shared read-only (library-like, write-protected) region in bytes
    /// (0 = none).
    pub shared_ro_bytes: u64,
    /// Probability an instruction is a load.
    pub load_ratio: f64,
    /// Probability an instruction is a store (the rest is compute).
    pub store_ratio: f64,
    /// Fraction of loads that target the shared read-only region.
    pub shared_load_fraction: f64,
    /// Probability that a store immediately follows a load **to the same
    /// block** — the write-after-read knob the E state exists for.
    pub war_fraction: f64,
    /// Zipf exponent over the private working set (higher = more locality).
    pub locality: f64,
    /// Average compute latency per non-memory instruction.
    pub compute_cycles: u32,
}

impl SynthParams {
    /// A balanced default profile (used as the base the named benchmark
    /// profiles perturb).
    pub fn balanced(instructions: u64) -> Self {
        SynthParams {
            instructions,
            private_bytes: 256 * 1024,
            shared_ro_bytes: 64 * 1024,
            load_ratio: 0.30,
            store_ratio: 0.12,
            shared_load_fraction: 0.15,
            war_fraction: 0.10,
            locality: 0.8,
            compute_cycles: 1,
        }
    }
}

/// The mapped regions a workload instance runs against.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadRegions {
    /// Base of the private read-write region.
    pub private_base: VirtAddr,
    /// Size of the private region in bytes.
    pub private_bytes: u64,
    /// Base of the shared read-only region (if any).
    pub shared_base: Option<VirtAddr>,
    /// Size of the shared region in bytes.
    pub shared_bytes: u64,
}

impl WorkloadRegions {
    /// Maps the regions `params` needs into `pid`'s address space.
    ///
    /// # Panics
    ///
    /// Panics if mapping fails (address-space exhaustion cannot happen in
    /// these experiments).
    pub fn map(sys: &mut System, pid: ProcessId, params: &SynthParams) -> Self {
        let mut proc = sys.process_mut(pid);
        let private_base = proc
            .mmap(
                params.private_bytes.max(4096),
                Prot::READ | Prot::WRITE,
                MapFlags::PRIVATE,
            )
            .expect("private region");
        let shared_base = (params.shared_ro_bytes > 0).then(|| {
            proc.mmap(params.shared_ro_bytes, Prot::READ, MapFlags::PRIVATE)
                .expect("shared region")
        });
        WorkloadRegions {
            private_base,
            private_bytes: params.private_bytes.max(4096),
            shared_base,
            shared_bytes: params.shared_ro_bytes,
        }
    }
}

/// A deterministic, generative instruction stream over mapped regions.
///
/// Instructions are produced lazily, so billion-instruction streams cost
/// no memory. Identical `(params, seed, regions)` produce identical
/// streams.
#[derive(Debug, Clone)]
pub struct SynthStream {
    params: SynthParams,
    regions: WorkloadRegions,
    rng: DetRng,
    zipf: Zipf,
    emitted: u64,
    /// A pending same-block store (the write half of a WAR pair).
    pending_war_store: Option<VirtAddr>,
}

impl SynthStream {
    /// Builds the stream.
    ///
    /// # Panics
    ///
    /// Panics if `params` requests shared loads without a shared region.
    pub fn new(params: SynthParams, regions: WorkloadRegions, seed: u64) -> Self {
        assert!(
            params.shared_load_fraction == 0.0 || regions.shared_base.is_some(),
            "shared loads need a shared region"
        );
        let blocks = (regions.private_bytes / 64).max(1) as usize;
        SynthStream {
            params,
            regions,
            rng: DetRng::new(seed),
            zipf: Zipf::new(blocks, params.locality),
            emitted: 0,
            pending_war_store: None,
        }
    }

    fn private_addr(&mut self) -> VirtAddr {
        let block = self.zipf.sample(&mut self.rng) as u64;
        VirtAddr(self.regions.private_base.0 + block * 64)
    }

    fn shared_addr(&mut self) -> VirtAddr {
        let base = self.regions.shared_base.expect("checked in new");
        let blocks = (self.regions.shared_bytes / 64).max(1);
        VirtAddr(base.0 + self.rng.below(blocks) * 64)
    }
}

impl InstrStream for SynthStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.emitted >= self.params.instructions {
            return None;
        }
        self.emitted += 1;

        // Complete a write-after-read pair first.
        if let Some(va) = self.pending_war_store.take() {
            return Some(Instr::store(va));
        }

        let draw = self.rng.next_f64();
        if draw < self.params.load_ratio {
            // A load; decide target and whether a WAR store follows.
            if self.params.shared_load_fraction > 0.0
                && self.rng.chance(self.params.shared_load_fraction)
            {
                Some(Instr::load(self.shared_addr()))
            } else {
                let va = self.private_addr();
                if self.rng.chance(self.params.war_fraction) {
                    self.pending_war_store = Some(va);
                }
                Some(Instr::load(va))
            }
        } else if draw < self.params.load_ratio + self.params.store_ratio {
            Some(Instr::store(self.private_addr()))
        } else {
            Some(Instr::compute(self.params.compute_cycles.max(1)))
        }
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.params.instructions - self.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftdir_coherence::ProtocolKind;
    use swiftdir_core::SystemConfig;
    use swiftdir_cpu::CpuModel;

    fn system() -> System {
        System::new(
            SystemConfig::builder()
                .cores(1)
                .protocol(ProtocolKind::Mesi)
                .cpu_model(CpuModel::TimingSimple)
                .build(),
        )
    }

    #[test]
    fn stream_is_deterministic() {
        let mut sys = system();
        let pid = sys.spawn_process();
        let params = SynthParams::balanced(500);
        let regions = WorkloadRegions::map(&mut sys, pid, &params);
        let collect = |mut s: SynthStream| {
            let mut v = Vec::new();
            while let Some(i) = s.next_instr() {
                v.push(i);
            }
            v
        };
        let a = collect(SynthStream::new(params, regions, 42));
        let b = collect(SynthStream::new(params, regions, 42));
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let c = collect(SynthStream::new(params, regions, 43));
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn ratios_roughly_respected() {
        let mut sys = system();
        let pid = sys.spawn_process();
        let params = SynthParams {
            war_fraction: 0.0,
            ..SynthParams::balanced(20_000)
        };
        let regions = WorkloadRegions::map(&mut sys, pid, &params);
        let mut s = SynthStream::new(params, regions, 1);
        let (mut loads, mut stores, mut compute) = (0u64, 0u64, 0u64);
        while let Some(i) = s.next_instr() {
            match i {
                Instr::Load(_) => loads += 1,
                Instr::Store(_) => stores += 1,
                Instr::Compute(_) => compute += 1,
            }
        }
        let total = (loads + stores + compute) as f64;
        assert!((loads as f64 / total - 0.30).abs() < 0.02);
        assert!((stores as f64 / total - 0.12).abs() < 0.02);
    }

    #[test]
    fn war_pairs_store_to_loaded_block() {
        let mut sys = system();
        let pid = sys.spawn_process();
        let params = SynthParams {
            load_ratio: 1.0,
            store_ratio: 0.0,
            shared_load_fraction: 0.0,
            war_fraction: 1.0,
            ..SynthParams::balanced(100)
        };
        let regions = WorkloadRegions::map(&mut sys, pid, &params);
        let mut s = SynthStream::new(params, regions, 5);
        let mut last_load: Option<VirtAddr> = None;
        while let Some(i) = s.next_instr() {
            match i {
                Instr::Load(va) => last_load = Some(va),
                Instr::Store(va) => {
                    assert_eq!(Some(va), last_load, "WAR store hits the loaded block")
                }
                Instr::Compute(_) => {}
            }
        }
    }

    #[test]
    fn runs_on_a_system_end_to_end() {
        let mut sys = system();
        let pid = sys.spawn_process();
        let params = SynthParams::balanced(2_000);
        let regions = WorkloadRegions::map(&mut sys, pid, &params);
        let stream = SynthStream::new(params, regions, 9);
        sys.run_thread_stream(pid, 0, stream);
        let stats = sys.run_to_completion();
        assert_eq!(stats.instructions(), 2_000);
        assert!(stats.roi_cycles() > 2_000, "memory latency shows up");
    }

    #[test]
    fn shared_region_loads_are_write_protected() {
        let mut sys = System::new(
            SystemConfig::builder()
                .cores(1)
                .protocol(ProtocolKind::SwiftDir)
                .cpu_model(CpuModel::TimingSimple)
                .build(),
        );
        let pid = sys.spawn_process();
        let params = SynthParams {
            shared_load_fraction: 1.0,
            load_ratio: 1.0,
            store_ratio: 0.0,
            war_fraction: 0.0,
            ..SynthParams::balanced(200)
        };
        let regions = WorkloadRegions::map(&mut sys, pid, &params);
        let stream = SynthStream::new(params, regions, 2);
        sys.run_thread_stream(pid, 0, stream);
        let stats = sys.run_to_completion();
        assert!(
            stats
                .hierarchy
                .event(swiftdir_coherence::CoherenceEvent::GetsWp)
                > 0,
            "shared-region loads must be GETS_WP under SwiftDir"
        );
        assert_eq!(
            stats
                .hierarchy
                .event(swiftdir_coherence::CoherenceEvent::Gets),
            0
        );
    }
}
