//! Victim selection policies.

/// Which line to evict when a set is full.
///
/// The paper's configuration uses LRU (its §V-B discussion of S-MESI's
/// occasional wins hinges on LRU recency effects); FIFO and a deterministic
/// pseudo-random policy are provided for ablations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line.
    #[default]
    Lru,
    /// Evict the oldest-inserted line.
    Fifo,
    /// Evict a pseudo-random line (deterministic xorshift stream).
    Random,
}

/// Selects a victim way given per-way `(last_use, inserted)` metadata.
///
/// `rng_state` is advanced only by [`ReplacementPolicy::Random`]; passing
/// the same state yields the same choice, keeping simulations reproducible.
pub(crate) fn choose_victim(
    policy: ReplacementPolicy,
    ways: &[(u64, u64)],
    rng_state: &mut u64,
) -> usize {
    debug_assert!(!ways.is_empty());
    match policy {
        ReplacementPolicy::Lru => ways
            .iter()
            .enumerate()
            .min_by_key(|(_, &(last_use, _))| last_use)
            .map(|(i, _)| i)
            .expect("non-empty set"),
        ReplacementPolicy::Fifo => ways
            .iter()
            .enumerate()
            .min_by_key(|(_, &(_, inserted))| inserted)
            .map(|(i, _)| i)
            .expect("non-empty set"),
        ReplacementPolicy::Random => {
            // xorshift64*
            let mut x = *rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *rng_state = x;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % ways.len() as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recent() {
        let ways = [(10, 0), (3, 1), (7, 2)];
        let mut rng = 1;
        assert_eq!(choose_victim(ReplacementPolicy::Lru, &ways, &mut rng), 1);
    }

    #[test]
    fn fifo_picks_oldest_insert() {
        let ways = [(10, 5), (3, 9), (7, 2)];
        let mut rng = 1;
        assert_eq!(choose_victim(ReplacementPolicy::Fifo, &ways, &mut rng), 2);
    }

    #[test]
    fn random_is_deterministic_and_in_bounds() {
        let ways = [(0, 0); 8];
        let mut r1 = 42;
        let mut r2 = 42;
        for _ in 0..100 {
            let a = choose_victim(ReplacementPolicy::Random, &ways, &mut r1);
            let b = choose_victim(ReplacementPolicy::Random, &ways, &mut r2);
            assert_eq!(a, b);
            assert!(a < 8);
        }
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
