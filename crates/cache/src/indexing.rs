//! The three commercial L1 architectures (paper §IV-B, Figure 5).
//!
//! SwiftDir must get the MMU's write-protection bit to the coherence
//! controller. The paper shows this works for every commercial L1
//! organization because the LLC is always PIPT: by the time a request
//! reaches the LLC, translation — and therefore the WP bit — is available.
//! What differs is *where/when* the bit first arrives and whether
//! translation sits on the L1 critical path:
//!
//! | L1 arch | WP arrives at | translation vs. L1 access |
//! |---------|---------------|---------------------------|
//! | PIPT    | L1, set indexing | before (serial)        |
//! | VIPT    | L1, tag comparison | overlapped           |
//! | VIVT    | LLC, set indexing | after L1 (miss path only) |

use swiftdir_mmu::{PhysAddr, VirtAddr};

use crate::geometry::CacheGeometry;

/// Where and when the write-protection bit reaches the cache hierarchy —
/// the `(where, when)` property of paper Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WpArrival {
    /// Available at the L1 as soon as set indexing starts (PIPT).
    L1SetIndexing,
    /// Available at the L1 when tags are compared (VIPT).
    L1TagComparison,
    /// Available at the (PIPT) LLC when the miss request arrives (VIVT).
    LlcSetIndexing,
}

/// An L1 cache addressing architecture.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Architecture {
    /// Physically indexed, physically tagged (e.g. ARM Cortex-A L1D).
    Pipt,
    /// Virtually indexed, physically tagged (e.g. Intel Skylake, AMD Zen
    /// L1D) — the common modern choice, and this crate's default.
    #[default]
    Vipt,
    /// Virtually indexed, virtually tagged (older cores, e.g. ARM920T).
    Vivt,
}

impl L1Architecture {
    /// The set index used by an L1 of this architecture.
    ///
    /// PIPT indexes with physical bits; VIPT and VIVT index with virtual
    /// bits (for VIPT this is what lets indexing overlap translation).
    pub fn set_index(self, vaddr: VirtAddr, paddr: PhysAddr, geom: &CacheGeometry) -> u64 {
        match self {
            L1Architecture::Pipt => geom.index_of(paddr.0),
            L1Architecture::Vipt | L1Architecture::Vivt => geom.index_of(vaddr.0),
        }
    }

    /// Whether address translation must complete before the L1 lookup can
    /// *start* (true only for PIPT: translation is on the hit critical
    /// path).
    pub fn translation_before_l1(self) -> bool {
        matches!(self, L1Architecture::Pipt)
    }

    /// Whether an L1 *hit* requires a completed translation at all.
    ///
    /// VIVT hits are served entirely by virtual address; translation (and
    /// the WP bit) is only produced on the miss path, before the PIPT LLC
    /// is accessed.
    pub fn hit_needs_translation(self) -> bool {
        !matches!(self, L1Architecture::Vivt)
    }

    /// Where/when the WP bit becomes available (paper Figure 5).
    pub fn wp_arrival(self) -> WpArrival {
        match self {
            L1Architecture::Pipt => WpArrival::L1SetIndexing,
            L1Architecture::Vipt => WpArrival::L1TagComparison,
            L1Architecture::Vivt => WpArrival::LlcSetIndexing,
        }
    }

    /// Extra cycles of translation latency exposed on an L1 **hit**, given
    /// the TLB-hit latency. PIPT serializes it; VIPT hides it under set
    /// indexing; VIVT does not translate at all on a hit.
    pub fn hit_translation_cycles(self, tlb_hit_cycles: u64) -> u64 {
        match self {
            L1Architecture::Pipt => tlb_hit_cycles,
            L1Architecture::Vipt | L1Architecture::Vivt => 0,
        }
    }

    /// Extra cycles of translation latency exposed on the **miss** path
    /// (before the request may be sent to the LLC). VIVT pays translation
    /// here; PIPT already paid before the L1; VIPT overlapped it.
    pub fn miss_translation_cycles(self, tlb_hit_cycles: u64) -> u64 {
        match self {
            L1Architecture::Vivt => tlb_hit_cycles,
            L1Architecture::Pipt | L1Architecture::Vipt => 0,
        }
    }

    /// All three architectures, for sweeps.
    pub const ALL: [L1Architecture; 3] = [
        L1Architecture::Pipt,
        L1Architecture::Vipt,
        L1Architecture::Vivt,
    ];
}

impl std::fmt::Display for L1Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            L1Architecture::Pipt => "PIPT",
            L1Architecture::Vipt => "VIPT",
            L1Architecture::Vivt => "VIVT",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wp_arrival_matches_figure_5() {
        assert_eq!(L1Architecture::Pipt.wp_arrival(), WpArrival::L1SetIndexing);
        assert_eq!(
            L1Architecture::Vipt.wp_arrival(),
            WpArrival::L1TagComparison
        );
        assert_eq!(L1Architecture::Vivt.wp_arrival(), WpArrival::LlcSetIndexing);
    }

    #[test]
    fn pipt_indexes_physically() {
        let geom = CacheGeometry::table_v_l1();
        let va = VirtAddr(0x7000_1040);
        let pa = PhysAddr(0x0000_3080);
        assert_eq!(
            L1Architecture::Pipt.set_index(va, pa, &geom),
            geom.index_of(pa.0)
        );
        assert_eq!(
            L1Architecture::Vipt.set_index(va, pa, &geom),
            geom.index_of(va.0)
        );
        assert_eq!(
            L1Architecture::Vivt.set_index(va, pa, &geom),
            geom.index_of(va.0)
        );
    }

    #[test]
    fn critical_path_properties() {
        assert!(L1Architecture::Pipt.translation_before_l1());
        assert!(!L1Architecture::Vipt.translation_before_l1());
        assert!(!L1Architecture::Vivt.translation_before_l1());
        assert!(L1Architecture::Pipt.hit_needs_translation());
        assert!(L1Architecture::Vipt.hit_needs_translation());
        assert!(!L1Architecture::Vivt.hit_needs_translation());
    }

    #[test]
    fn latency_exposure() {
        // With a 1-cycle TLB, PIPT exposes it on hits, VIVT on misses,
        // VIPT never.
        assert_eq!(L1Architecture::Pipt.hit_translation_cycles(1), 1);
        assert_eq!(L1Architecture::Vipt.hit_translation_cycles(1), 0);
        assert_eq!(L1Architecture::Vivt.hit_translation_cycles(1), 0);
        assert_eq!(L1Architecture::Pipt.miss_translation_cycles(1), 0);
        assert_eq!(L1Architecture::Vipt.miss_translation_cycles(1), 0);
        assert_eq!(L1Architecture::Vivt.miss_translation_cycles(1), 1);
    }

    #[test]
    fn default_is_vipt_and_display() {
        assert_eq!(L1Architecture::default(), L1Architecture::Vipt);
        assert_eq!(L1Architecture::Vipt.to_string(), "VIPT");
        assert_eq!(L1Architecture::ALL.len(), 3);
    }
}
