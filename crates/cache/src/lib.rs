//! Cache structures for the SwiftDir simulator.
//!
//! * [`geometry`] — size/associativity/block math ([`CacheGeometry`]).
//! * [`replacement`] — LRU / FIFO / pseudo-random victim selection.
//! * [`array`] — a set-associative array generic over the per-line state
//!   (the coherence crate instantiates it with protocol states).
//! * [`mshr`] — miss-status holding registers, bounding outstanding misses
//!   and merging requests to the same block.
//! * [`indexing`] — the three commercial L1 architectures the paper
//!   analyses in §IV-B (PIPT, VIPT, VIVT): how the set index is formed and
//!   *where/when* the MMU's write-protection bit becomes available to the
//!   hierarchy (paper Figure 5).
//!
//! # Example
//!
//! ```
//! use swiftdir_cache::{CacheArray, CacheGeometry, ReplacementPolicy};
//!
//! // Table V's L1: 32 KB, 4-way, 64-byte blocks.
//! let geom = CacheGeometry::new(32 * 1024, 4, 64);
//! let mut l1: CacheArray<char> = CacheArray::new(geom, ReplacementPolicy::Lru);
//! assert!(l1.insert(0x1000, 'S').is_none(), "no eviction needed");
//! assert_eq!(l1.get(0x1000), Some(&'S'));
//! ```

pub mod array;
pub mod geometry;
pub mod indexing;
pub mod mshr;
pub mod replacement;

pub use array::{CacheArray, EvictedLine};
pub use geometry::CacheGeometry;
pub use indexing::{L1Architecture, WpArrival};
pub use mshr::{MshrFile, MshrOutcome};
pub use replacement::ReplacementPolicy;
