//! Cache size / associativity / block arithmetic.

/// Geometry of one cache: capacity, associativity, and block size.
///
/// All three must be powers of two so index and tag extraction are bit
/// operations, as in hardware.
///
/// # Example
///
/// ```
/// use swiftdir_cache::CacheGeometry;
/// // Table V L1: 32 KB, 4-way, 64 B blocks -> 128 sets.
/// let g = CacheGeometry::new(32 * 1024, 4, 64);
/// assert_eq!(g.num_sets(), 128);
/// assert_eq!(g.block_base(0x12345), 0x12340);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    associativity: u32,
    block_bytes: u64,
    // Derived shift/mask values, precomputed at construction so the
    // per-access index/tag extraction is two bit operations with no
    // division or recounting of trailing zeros.
    offset_bits: u32,
    index_bits: u32,
    index_mask: u64,
    block_mask: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes`, `associativity`, and `block_bytes` are
    /// nonzero powers of two and the capacity holds at least one set.
    pub fn new(size_bytes: u64, associativity: u32, block_bytes: u64) -> Self {
        assert!(size_bytes.is_power_of_two(), "size must be a power of two");
        assert!(
            associativity.is_power_of_two(),
            "associativity must be a power of two"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(
            size_bytes >= associativity as u64 * block_bytes,
            "cache smaller than one set"
        );
        let num_sets = size_bytes / (associativity as u64 * block_bytes);
        CacheGeometry {
            size_bytes,
            associativity,
            block_bytes,
            offset_bits: block_bytes.trailing_zeros(),
            index_bits: num_sets.trailing_zeros(),
            index_mask: num_sets - 1,
            block_mask: !(block_bytes - 1),
        }
    }

    /// Table V's private L1: 32 KB, 4-way, 64-byte blocks.
    pub fn table_v_l1() -> Self {
        CacheGeometry::new(32 * 1024, 4, 64)
    }

    /// Table V's shared L2 bank: 2 MB, 16-way, 64-byte blocks (one bank
    /// per core).
    pub fn table_v_l2_bank() -> Self {
        CacheGeometry::new(2 * 1024 * 1024, 16, 64)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Ways per set.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Block (line) size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        self.index_mask + 1
    }

    /// Low bits consumed by the block offset.
    #[inline]
    pub fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Bits consumed by the set index.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// The set index of `addr`.
    #[inline]
    pub fn index_of(&self, addr: u64) -> u64 {
        (addr >> self.offset_bits) & self.index_mask
    }

    /// The tag of `addr` (bits above index and offset).
    #[inline]
    pub fn tag_of(&self, addr: u64) -> u64 {
        addr >> (self.offset_bits + self.index_bits)
    }

    /// The first byte address of the block containing `addr`.
    #[inline]
    pub fn block_base(&self, addr: u64) -> u64 {
        addr & self.block_mask
    }

    /// Reconstructs a block base address from its tag and index.
    #[inline]
    pub fn address_of(&self, tag: u64, index: u64) -> u64 {
        (tag << (self.offset_bits + self.index_bits)) | (index << self.offset_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_geometries() {
        let l1 = CacheGeometry::table_v_l1();
        assert_eq!(l1.num_sets(), 128);
        assert_eq!(l1.offset_bits(), 6);
        assert_eq!(l1.index_bits(), 7);
        let l2 = CacheGeometry::table_v_l2_bank();
        assert_eq!(l2.num_sets(), 2048);
        assert_eq!(l2.associativity(), 16);
    }

    #[test]
    fn index_tag_roundtrip() {
        let g = CacheGeometry::table_v_l1();
        for addr in [0u64, 0x40, 0x1f_ffc0, 0xdead_bec0] {
            let base = g.block_base(addr);
            let rebuilt = g.address_of(g.tag_of(addr), g.index_of(addr));
            assert_eq!(rebuilt, base, "addr {addr:#x}");
        }
    }

    #[test]
    fn same_set_different_tags_collide() {
        let g = CacheGeometry::table_v_l1();
        let stride = g.num_sets() * g.block_bytes();
        assert_eq!(g.index_of(0x40), g.index_of(0x40 + stride));
        assert_ne!(g.tag_of(0x40), g.tag_of(0x40 + stride));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_rejected() {
        CacheGeometry::new(3000, 4, 64);
    }

    #[test]
    #[should_panic(expected = "smaller than one set")]
    fn degenerate_capacity_rejected() {
        CacheGeometry::new(64, 4, 64);
    }
}
