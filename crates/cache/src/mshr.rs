//! Miss-status holding registers.

use sim_engine::FxHashMap;

/// What happened when a miss was presented to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated: this is the primary miss, the caller
    /// must issue the coherence request.
    Allocated,
    /// An entry for this block already exists: the request was merged and
    /// will complete when the primary does.
    Merged,
    /// No entry and no free slot: the request must stall and retry.
    Full,
}

/// A file of miss-status holding registers: bounds the number of distinct
/// outstanding misses and merges secondary misses to the same block.
///
/// `W` is the caller's per-waiter payload (e.g. which instruction to wake).
///
/// # Example
///
/// ```
/// use swiftdir_cache::{MshrFile, MshrOutcome};
///
/// let mut mshrs: MshrFile<&str> = MshrFile::new(2);
/// assert_eq!(mshrs.allocate(0x40, "a"), MshrOutcome::Allocated);
/// assert_eq!(mshrs.allocate(0x40, "b"), MshrOutcome::Merged);
/// let waiters = mshrs.complete(0x40);
/// assert_eq!(waiters, vec!["a", "b"]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    entries: FxHashMap<u64, Vec<W>>,
    capacity: usize,
}

impl<W> MshrFile<W> {
    /// A file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity MSHR file");
        MshrFile {
            entries: FxHashMap::default(),
            capacity,
        }
    }

    /// Presents a miss on `block`; appends `waiter` unless the file is full.
    pub fn allocate(&mut self, block: u64, waiter: W) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&block) {
            waiters.push(waiter);
            return MshrOutcome::Merged;
        }
        if self.entries.len() == self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(block, vec![waiter]);
        MshrOutcome::Allocated
    }

    /// Completes the miss on `block`, freeing the register and returning
    /// all waiters in arrival order (empty if no entry existed).
    pub fn complete(&mut self, block: u64) -> Vec<W> {
        self.entries.remove(&block).unwrap_or_default()
    }

    /// Whether an entry for `block` is outstanding.
    pub fn contains(&self, block: u64) -> bool {
        self.entries.contains_key(&block)
    }

    /// Number of registers in use.
    pub fn in_use(&self) -> usize {
        self.entries.len()
    }

    /// Whether every register is occupied.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_complete_cycle() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        assert_eq!(m.allocate(0x40, 1), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x40, 2), MshrOutcome::Merged);
        assert!(m.contains(0x40));
        assert_eq!(m.in_use(), 1);
        assert_eq!(m.complete(0x40), vec![1, 2]);
        assert!(!m.contains(0x40));
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn full_file_rejects_new_blocks_but_merges_existing() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert_eq!(m.allocate(0x40, 1), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.allocate(0x80, 2), MshrOutcome::Full);
        assert_eq!(m.allocate(0x40, 3), MshrOutcome::Merged, "merge still ok");
    }

    #[test]
    fn complete_unknown_block_is_empty() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert!(m.complete(0x40).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        MshrFile::<()>::new(0);
    }
}
