//! A set-associative cache array generic over per-line state.

use crate::geometry::CacheGeometry;
use crate::replacement::{choose_victim, ReplacementPolicy};

/// A line pushed out by [`CacheArray::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine<S> {
    /// Block base address of the evicted line.
    pub addr: u64,
    /// Its state at eviction (the coherence controller decides whether a
    /// writeback is needed).
    pub state: S,
}

#[derive(Debug, Clone)]
struct Line<S> {
    tag: u64,
    state: S,
    last_use: u64,
    inserted: u64,
}

/// A set-associative array mapping block addresses to caller-defined line
/// state `S` (coherence states, metadata, ...).
///
/// Addresses are raw `u64`s; callers pass physical or virtual addresses as
/// their indexing scheme requires. All operations work on the *block*
/// containing the given address.
///
/// # Example
///
/// ```
/// use swiftdir_cache::{CacheArray, CacheGeometry, ReplacementPolicy};
///
/// let mut c: CacheArray<u32> = CacheArray::new(
///     CacheGeometry::new(1024, 2, 64),
///     ReplacementPolicy::Lru,
/// );
/// c.insert(0x00, 1);
/// c.insert(0x40, 2);
/// assert_eq!(c.get(0x44), Some(&2), "same block as 0x40");
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray<S> {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<Vec<Line<S>>>,
    tick: u64,
    rng_state: u64,
}

impl<S> CacheArray<S> {
    /// An empty array with the given geometry and policy.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let sets = (0..geom.num_sets()).map(|_| Vec::new()).collect();
        CacheArray {
            geom,
            policy,
            sets,
            tick: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The geometry in use.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Looks up the block containing `addr`, refreshing recency on hit.
    pub fn get(&mut self, addr: u64) -> Option<&S> {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.geom.tag_of(addr);
        let set = &mut self.sets[self.geom.index_of(addr) as usize];
        set.iter_mut().find(|l| l.tag == tag).map(|l| {
            l.last_use = tick;
            &l.state
        })
    }

    /// Mutable lookup, refreshing recency on hit.
    pub fn get_mut(&mut self, addr: u64) -> Option<&mut S> {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.geom.tag_of(addr);
        let set = &mut self.sets[self.geom.index_of(addr) as usize];
        set.iter_mut().find(|l| l.tag == tag).map(|l| {
            l.last_use = tick;
            &mut l.state
        })
    }

    /// Looks up without touching recency (for probes/assertions).
    pub fn peek(&self, addr: u64) -> Option<&S> {
        let tag = self.geom.tag_of(addr);
        let set = &self.sets[self.geom.index_of(addr) as usize];
        set.iter().find(|l| l.tag == tag).map(|l| &l.state)
    }

    /// Inserts (or replaces) the block containing `addr`, returning the
    /// victim when the set was full.
    pub fn insert(&mut self, addr: u64, state: S) -> Option<EvictedLine<S>> {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.geom.tag_of(addr);
        let index = self.geom.index_of(addr);
        let assoc = self.geom.associativity() as usize;
        let set = &mut self.sets[index as usize];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.state = state;
            line.last_use = tick;
            return None;
        }

        let mut evicted = None;
        if set.len() == assoc {
            let meta: Vec<(u64, u64)> = set.iter().map(|l| (l.last_use, l.inserted)).collect();
            let victim = choose_victim(self.policy, &meta, &mut self.rng_state);
            let line = set.swap_remove(victim);
            evicted = Some(EvictedLine {
                addr: self.geom.address_of(line.tag, index),
                state: line.state,
            });
        }
        set.push(Line {
            tag,
            state,
            last_use: tick,
            inserted: tick,
        });
        evicted
    }

    /// Removes the block containing `addr`, returning its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<S> {
        let tag = self.geom.tag_of(addr);
        let set = &mut self.sets[self.geom.index_of(addr) as usize];
        let pos = set.iter().position(|l| l.tag == tag)?;
        Some(set.swap_remove(pos).state)
    }

    /// Whether the set for `addr` still has a free way (an insert would not
    /// evict).
    pub fn set_has_free_way(&self, addr: u64) -> bool {
        self.sets[self.geom.index_of(addr) as usize].len() < self.geom.associativity() as usize
    }

    /// Chooses a victim in `addr`'s set according to the replacement policy,
    /// considering only lines for which `eligible` returns true (coherence
    /// controllers pass "is in a stable state"). Returns the victim's block
    /// address without removing it, or `None` if no line is eligible.
    pub fn choose_victim<F: Fn(&S) -> bool>(&mut self, addr: u64, eligible: F) -> Option<u64> {
        let index = self.geom.index_of(addr);
        let set = &self.sets[index as usize];
        let candidates: Vec<(usize, (u64, u64))> = set
            .iter()
            .enumerate()
            .filter(|(_, l)| eligible(&l.state))
            .map(|(i, l)| (i, (l.last_use, l.inserted)))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let meta: Vec<(u64, u64)> = candidates.iter().map(|&(_, m)| m).collect();
        let pick = choose_victim(self.policy, &meta, &mut self.rng_state);
        let way = candidates[pick].0;
        Some(self.geom.address_of(set[way].tag, index))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical view for state hashing: `(block_addr, lru_rank, fifo_rank,
    /// &state)` for every resident line, sorted by address. Ranks are the
    /// per-set orders of `last_use` / insertion time — the only recency
    /// information replacement decisions depend on — so two arrays that
    /// behave identically going forward yield identical views even when
    /// their absolute access-tick histories differ.
    pub fn canonical_lines(&self) -> Vec<(u64, u64, u64, &S)> {
        let mut out = Vec::with_capacity(self.len());
        for (index, set) in self.sets.iter().enumerate() {
            let mut lru: Vec<u64> = set.iter().map(|l| l.last_use).collect();
            lru.sort_unstable();
            let mut fifo: Vec<u64> = set.iter().map(|l| l.inserted).collect();
            fifo.sort_unstable();
            for l in set {
                let lru_rank = lru.iter().position(|&t| t == l.last_use).expect("own tick") as u64;
                let fifo_rank = fifo
                    .iter()
                    .position(|&t| t == l.inserted)
                    .expect("own tick") as u64;
                out.push((
                    self.geom.address_of(l.tag, index as u64),
                    lru_rank,
                    fifo_rank,
                    &l.state,
                ));
            }
        }
        out.sort_by_key(|&(a, ..)| a);
        out
    }

    /// Iterates over `(block_address, state)` for all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &S)> {
        self.sets.iter().enumerate().flat_map(move |(index, set)| {
            set.iter()
                .map(move |l| (self.geom.address_of(l.tag, index as u64), &l.state))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray<u32> {
        // 2 sets x 2 ways x 64B blocks.
        CacheArray::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Lru)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(c.insert(0x100, 7).is_none());
        assert_eq!(c.get(0x100), Some(&7));
        assert_eq!(c.get(0x13f), Some(&7), "same 64B block");
        assert_eq!(c.get(0x140), None, "next block");
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(0x100, 1);
        assert!(c.insert(0x100, 2).is_none());
        assert_eq!(c.peek(0x100), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_in_full_set() {
        let mut c = tiny();
        // Set stride = 2 sets * 64B = 128; same set every 0x80? No:
        // index_of uses bits 6 (1 index bit). Blocks 0x000, 0x080, 0x100 share set 0.
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.get(0x000); // make 0x080 LRU
        let ev = c.insert(0x100, 3).expect("set was full");
        assert_eq!(ev.addr, 0x080);
        assert_eq!(ev.state, 2);
        assert!(c.peek(0x000).is_some());
        assert!(c.peek(0x100).is_some());
    }

    #[test]
    fn eviction_address_reconstruction() {
        let mut c = tiny();
        c.insert(0xA000, 1);
        c.insert(0xB000, 2);
        let ev = c.insert(0xC000, 3).unwrap();
        assert!(ev.addr == 0xA000 || ev.addr == 0xB000);
        assert_eq!(ev.addr % 64, 0, "block-aligned");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(0x40, 9);
        assert_eq!(c.invalidate(0x40), Some(9));
        assert_eq!(c.invalidate(0x40), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.peek(0x000); // not a use
                       // 0x000 is still LRU, so it gets evicted.
        let ev = c.insert(0x100, 3).unwrap();
        assert_eq!(ev.addr, 0x000);
    }

    #[test]
    fn iter_lists_all_lines() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x040, 2);
        let mut got: Vec<(u64, u32)> = c.iter().map(|(a, &s)| (a, s)).collect();
        got.sort();
        assert_eq!(got, vec![(0x000, 1), (0x040, 2)]);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x040, 2); // other set
        c.insert(0x080, 3);
        c.insert(0x100, 4); // evicts within set 0 only
        assert!(c.peek(0x040).is_some(), "set 1 untouched");
    }

    #[test]
    fn free_way_detection() {
        let mut c = tiny();
        assert!(c.set_has_free_way(0x000));
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        assert!(!c.set_has_free_way(0x000));
        assert!(c.set_has_free_way(0x040), "other set unaffected");
    }

    #[test]
    fn choose_victim_respects_filter_and_policy() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.get(0x080); // 0x000 becomes LRU
        assert_eq!(c.choose_victim(0x000, |_| true), Some(0x000));
        // If the LRU line is ineligible (e.g. transient), the next one goes.
        assert_eq!(c.choose_victim(0x000, |&s| s != 1), Some(0x080));
        assert_eq!(c.choose_victim(0x000, |_| false), None);
        // choose_victim does not remove.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn fifo_policy_ignores_recency() {
        let mut c: CacheArray<u32> =
            CacheArray::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Fifo);
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.get(0x000); // recency refresh must NOT save 0x000 under FIFO
        let ev = c.insert(0x100, 3).unwrap();
        assert_eq!(ev.addr, 0x000);
    }
}
