//! A set-associative cache array generic over per-line state.

use std::hash::{Hash, Hasher};

use sim_engine::FxHasher;

use crate::geometry::CacheGeometry;
use crate::replacement::{choose_victim, ReplacementPolicy};

/// A line pushed out by [`CacheArray::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine<S> {
    /// Block base address of the evicted line.
    pub addr: u64,
    /// Its state at eviction (the coherence controller decides whether a
    /// writeback is needed).
    pub state: S,
}

#[derive(Debug, Clone)]
struct Line<S> {
    tag: u64,
    state: S,
    last_use: u64,
    inserted: u64,
}

/// One journaled mutation record: a full snapshot of a set (plus the
/// array-global tick and replacement RNG) taken just before the mutation.
/// Restoring entries in reverse order rewinds the array exactly.
#[derive(Debug, Clone)]
struct SetSave<S> {
    index: usize,
    tick: u64,
    rng_state: u64,
    lines: Vec<Line<S>>,
}

/// An undo journal of pre-mutation set snapshots; see
/// [`CacheArray::enable_journal`]. Entries past `live` are retired but keep
/// their line buffers allocated for reuse.
#[derive(Debug, Clone)]
struct Journal<S> {
    entries: Vec<SetSave<S>>,
    live: usize,
}

impl<S> Default for Journal<S> {
    fn default() -> Self {
        Journal {
            entries: Vec::new(),
            live: 0,
        }
    }
}

/// A set-associative array mapping block addresses to caller-defined line
/// state `S` (coherence states, metadata, ...).
///
/// Addresses are raw `u64`s; callers pass physical or virtual addresses as
/// their indexing scheme requires. All operations work on the *block*
/// containing the given address.
///
/// # Example
///
/// ```
/// use swiftdir_cache::{CacheArray, CacheGeometry, ReplacementPolicy};
///
/// let mut c: CacheArray<u32> = CacheArray::new(
///     CacheGeometry::new(1024, 2, 64),
///     ReplacementPolicy::Lru,
/// );
/// c.insert(0x00, 1);
/// c.insert(0x40, 2);
/// assert_eq!(c.get(0x44), Some(&2), "same block as 0x40");
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray<S> {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<Vec<Line<S>>>,
    tick: u64,
    rng_state: u64,
    /// Per-set content hashes (valid only where `dirty` is clear) and the
    /// XOR of all *clean* sets' hashes. Empty sets hash to 0, so the XOR
    /// over clean hashes equals the XOR over clean non-empty sets.
    set_hashes: Vec<u64>,
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    rolling: u64,
    /// When present, every mutation snapshots its set first; see
    /// [`enable_journal`](Self::enable_journal). Boxed so the common
    /// non-journaling array pays one pointer.
    journal: Option<Box<Journal<S>>>,
}

impl<S> CacheArray<S> {
    /// An empty array with the given geometry and policy.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let num_sets = geom.num_sets() as usize;
        let sets = (0..num_sets).map(|_| Vec::new()).collect();
        CacheArray {
            geom,
            policy,
            sets,
            tick: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            set_hashes: vec![0; num_sets],
            dirty: vec![false; num_sets],
            dirty_list: Vec::new(),
            rolling: 0,
            journal: None,
        }
    }

    /// Marks a set's cached content hash stale, removing its contribution
    /// from the rolling XOR until [`content_digest`](Self::content_digest)
    /// recomputes it.
    #[inline]
    fn mark_dirty(&mut self, index: usize) {
        if !self.dirty[index] {
            self.dirty[index] = true;
            self.rolling ^= self.set_hashes[index];
            self.dirty_list.push(index as u32);
        }
    }

    /// Snapshots `index`'s set (and the global tick/RNG) into the journal,
    /// if journaling is on. Called before every mutation.
    #[inline]
    fn journal_save(&mut self, index: usize)
    where
        S: Clone,
    {
        let Some(journal) = self.journal.as_deref_mut() else {
            return;
        };
        if journal.live == journal.entries.len() {
            journal.entries.push(SetSave {
                index: 0,
                tick: 0,
                rng_state: 0,
                lines: Vec::new(),
            });
        }
        let save = &mut journal.entries[journal.live];
        journal.live += 1;
        save.index = index;
        save.tick = self.tick;
        save.rng_state = self.rng_state;
        save.lines.clone_from(&self.sets[index]);
    }

    /// The geometry in use.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Looks up the block containing `addr`, refreshing recency on hit.
    pub fn get(&mut self, addr: u64) -> Option<&S>
    where
        S: Clone,
    {
        let index = self.geom.index_of(addr) as usize;
        self.journal_save(index);
        self.tick += 1;
        let tick = self.tick;
        let tag = self.geom.tag_of(addr);
        let pos = self.sets[index].iter().position(|l| l.tag == tag)?;
        self.mark_dirty(index);
        let l = &mut self.sets[index][pos];
        l.last_use = tick;
        Some(&l.state)
    }

    /// Mutable lookup, refreshing recency on hit.
    pub fn get_mut(&mut self, addr: u64) -> Option<&mut S>
    where
        S: Clone,
    {
        let index = self.geom.index_of(addr) as usize;
        self.journal_save(index);
        self.tick += 1;
        let tick = self.tick;
        let tag = self.geom.tag_of(addr);
        let pos = self.sets[index].iter().position(|l| l.tag == tag)?;
        self.mark_dirty(index);
        let l = &mut self.sets[index][pos];
        l.last_use = tick;
        Some(&mut l.state)
    }

    /// Looks up without touching recency (for probes/assertions).
    pub fn peek(&self, addr: u64) -> Option<&S> {
        let tag = self.geom.tag_of(addr);
        let set = &self.sets[self.geom.index_of(addr) as usize];
        set.iter().find(|l| l.tag == tag).map(|l| &l.state)
    }

    /// Inserts (or replaces) the block containing `addr`, returning the
    /// victim when the set was full.
    pub fn insert(&mut self, addr: u64, state: S) -> Option<EvictedLine<S>>
    where
        S: Clone,
    {
        let index = self.geom.index_of(addr);
        self.journal_save(index as usize);
        self.mark_dirty(index as usize);
        self.tick += 1;
        let tick = self.tick;
        let tag = self.geom.tag_of(addr);
        let assoc = self.geom.associativity() as usize;
        let set = &mut self.sets[index as usize];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.state = state;
            line.last_use = tick;
            return None;
        }

        let mut evicted = None;
        if set.len() == assoc {
            let meta: Vec<(u64, u64)> = set.iter().map(|l| (l.last_use, l.inserted)).collect();
            let victim = choose_victim(self.policy, &meta, &mut self.rng_state);
            let line = set.swap_remove(victim);
            evicted = Some(EvictedLine {
                addr: self.geom.address_of(line.tag, index),
                state: line.state,
            });
        }
        set.push(Line {
            tag,
            state,
            last_use: tick,
            inserted: tick,
        });
        evicted
    }

    /// Removes the block containing `addr`, returning its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<S>
    where
        S: Clone,
    {
        let index = self.geom.index_of(addr) as usize;
        let tag = self.geom.tag_of(addr);
        let pos = self.sets[index].iter().position(|l| l.tag == tag)?;
        self.journal_save(index);
        self.mark_dirty(index);
        Some(self.sets[index].swap_remove(pos).state)
    }

    /// Whether the set for `addr` still has a free way (an insert would not
    /// evict).
    pub fn set_has_free_way(&self, addr: u64) -> bool {
        self.sets[self.geom.index_of(addr) as usize].len() < self.geom.associativity() as usize
    }

    /// Chooses a victim in `addr`'s set according to the replacement policy,
    /// considering only lines for which `eligible` returns true (coherence
    /// controllers pass "is in a stable state"). Returns the victim's block
    /// address without removing it, or `None` if no line is eligible.
    pub fn choose_victim<F: Fn(&S) -> bool>(&mut self, addr: u64, eligible: F) -> Option<u64>
    where
        S: Clone,
    {
        let index = self.geom.index_of(addr);
        // Journal the RNG draw (set contents are untouched, but the
        // replacement RNG advances and must rewind with everything else).
        self.journal_save(index as usize);
        let set = &self.sets[index as usize];
        let candidates: Vec<(usize, (u64, u64))> = set
            .iter()
            .enumerate()
            .filter(|(_, l)| eligible(&l.state))
            .map(|(i, l)| (i, (l.last_use, l.inserted)))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let meta: Vec<(u64, u64)> = candidates.iter().map(|&(_, m)| m).collect();
        let pick = choose_victim(self.policy, &meta, &mut self.rng_state);
        let way = candidates[pick].0;
        Some(self.geom.address_of(set[way].tag, index))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical view for state hashing: `(block_addr, lru_rank, fifo_rank,
    /// &state)` for every resident line, sorted by address. Ranks are the
    /// per-set orders of `last_use` / insertion time — the only recency
    /// information replacement decisions depend on — so two arrays that
    /// behave identically going forward yield identical views even when
    /// their absolute access-tick histories differ.
    pub fn canonical_lines(&self) -> Vec<(u64, u64, u64, &S)> {
        let mut out = Vec::with_capacity(self.len());
        for (index, set) in self.sets.iter().enumerate() {
            let mut lru: Vec<u64> = set.iter().map(|l| l.last_use).collect();
            lru.sort_unstable();
            let mut fifo: Vec<u64> = set.iter().map(|l| l.inserted).collect();
            fifo.sort_unstable();
            for l in set {
                let lru_rank = lru.iter().position(|&t| t == l.last_use).expect("own tick") as u64;
                let fifo_rank = fifo
                    .iter()
                    .position(|&t| t == l.inserted)
                    .expect("own tick") as u64;
                out.push((
                    self.geom.address_of(l.tag, index as u64),
                    lru_rank,
                    fifo_rank,
                    &l.state,
                ));
            }
        }
        out.sort_by_key(|&(a, ..)| a);
        out
    }

    /// Iterates over `(block_address, state)` for all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &S)> {
        self.sets.iter().enumerate().flat_map(move |(index, set)| {
            set.iter()
                .map(move |l| (self.geom.address_of(l.tag, index as u64), &l.state))
        })
    }

    /// Turns on undo journaling and clears any inherited journal: from here
    /// on, every mutation ([`get`](Self::get)/[`get_mut`](Self::get_mut)
    /// recency refreshes, inserts, invalidates, and
    /// [`choose_victim`](Self::choose_victim) RNG draws) first snapshots the
    /// touched set, so [`journal_rollback`](Self::journal_rollback) can
    /// rewind the array to any earlier [`journal_mark`](Self::journal_mark).
    pub fn enable_journal(&mut self)
    where
        S: Clone,
    {
        match &mut self.journal {
            Some(j) => {
                j.live = 0;
                j.entries.clear();
            }
            None => self.journal = Some(Box::default()),
        }
    }

    /// The current journal position; pass to
    /// [`journal_rollback`](Self::journal_rollback) to rewind to this point.
    ///
    /// # Panics
    ///
    /// Panics if journaling is not enabled.
    pub fn journal_mark(&self) -> usize {
        self.journal.as_ref().expect("journaling enabled").live
    }

    /// Rewinds the array to the state it had when `mark` was taken,
    /// restoring journaled sets in reverse order. Restored sets are left
    /// dirty in the digest cache.
    pub fn journal_rollback(&mut self, mark: usize)
    where
        S: Clone,
    {
        let mut journal = self.journal.take().expect("journaling enabled");
        debug_assert!(mark <= journal.live, "rollback past the journal head");
        while journal.live > mark {
            journal.live -= 1;
            let save = &journal.entries[journal.live];
            self.mark_dirty(save.index);
            self.sets[save.index].clone_from(&save.lines);
            self.tick = save.tick;
            self.rng_state = save.rng_state;
        }
        self.journal = Some(journal);
    }

    /// Approximate heap footprint of journal entries past `mark`, for
    /// profiling undo cost.
    pub fn journal_bytes_since(&self, mark: usize) -> u64 {
        let journal = self.journal.as_ref().expect("journaling enabled");
        journal.entries[mark..journal.live]
            .iter()
            .map(|s| {
                (std::mem::size_of::<SetSave<S>>() + s.lines.len() * std::mem::size_of::<Line<S>>())
                    as u64
            })
            .sum()
    }
}

impl<S: Hash> CacheArray<S> {
    /// Content hash of one set: the set index, then every resident line in
    /// ascending-tag order as `(block_addr, lru_rank, fifo_rank, state)`.
    /// Ranks are per-set recency orders, exactly as in
    /// [`canonical_lines`](Self::canonical_lines), so the hash is invariant
    /// under global tick relabeling. Empty sets hash to 0 so they can be
    /// skipped entirely.
    fn set_hash(geom: &CacheGeometry, index: usize, set: &[Line<S>]) -> u64 {
        if set.is_empty() {
            return 0;
        }
        let mut h = FxHasher::default();
        (index as u64).hash(&mut h);
        // Selection by ascending tag; O(n²) in the associativity, which is
        // small. Ticks are unique array-wide, so count-based ranks equal the
        // position-based ranks `canonical_lines` computes.
        let mut prev: Option<u64> = None;
        for _ in 0..set.len() {
            let l = set
                .iter()
                .filter(|l| prev.is_none_or(|p| l.tag > p))
                .min_by_key(|l| l.tag)
                .expect("lines remain");
            prev = Some(l.tag);
            let lru_rank = set.iter().filter(|o| o.last_use < l.last_use).count() as u64;
            let fifo_rank = set.iter().filter(|o| o.inserted < l.inserted).count() as u64;
            geom.address_of(l.tag, index as u64).hash(&mut h);
            lru_rank.hash(&mut h);
            fifo_rank.hash(&mut h);
            l.state.hash(&mut h);
        }
        h.finish()
    }

    /// XOR of all sets' content hashes, maintained incrementally: only sets
    /// dirtied since the previous call are rehashed. Bit-identical to
    /// [`content_digest_uncached`](Self::content_digest_uncached).
    pub fn content_digest(&mut self) -> u64 {
        while let Some(i) = self.dirty_list.pop() {
            let i = i as usize;
            let h = Self::set_hash(&self.geom, i, &self.sets[i]);
            self.set_hashes[i] = h;
            self.rolling ^= h;
            self.dirty[i] = false;
        }
        self.rolling
    }

    /// Reference implementation of [`content_digest`](Self::content_digest):
    /// a full rescan of every set, ignoring the cache.
    pub fn content_digest_uncached(&self) -> u64 {
        let mut acc = 0;
        for (index, set) in self.sets.iter().enumerate() {
            acc ^= Self::set_hash(&self.geom, index, set);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray<u32> {
        // 2 sets x 2 ways x 64B blocks.
        CacheArray::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Lru)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(c.insert(0x100, 7).is_none());
        assert_eq!(c.get(0x100), Some(&7));
        assert_eq!(c.get(0x13f), Some(&7), "same 64B block");
        assert_eq!(c.get(0x140), None, "next block");
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(0x100, 1);
        assert!(c.insert(0x100, 2).is_none());
        assert_eq!(c.peek(0x100), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_in_full_set() {
        let mut c = tiny();
        // Set stride = 2 sets * 64B = 128; same set every 0x80? No:
        // index_of uses bits 6 (1 index bit). Blocks 0x000, 0x080, 0x100 share set 0.
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.get(0x000); // make 0x080 LRU
        let ev = c.insert(0x100, 3).expect("set was full");
        assert_eq!(ev.addr, 0x080);
        assert_eq!(ev.state, 2);
        assert!(c.peek(0x000).is_some());
        assert!(c.peek(0x100).is_some());
    }

    #[test]
    fn eviction_address_reconstruction() {
        let mut c = tiny();
        c.insert(0xA000, 1);
        c.insert(0xB000, 2);
        let ev = c.insert(0xC000, 3).unwrap();
        assert!(ev.addr == 0xA000 || ev.addr == 0xB000);
        assert_eq!(ev.addr % 64, 0, "block-aligned");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(0x40, 9);
        assert_eq!(c.invalidate(0x40), Some(9));
        assert_eq!(c.invalidate(0x40), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.peek(0x000); // not a use
                       // 0x000 is still LRU, so it gets evicted.
        let ev = c.insert(0x100, 3).unwrap();
        assert_eq!(ev.addr, 0x000);
    }

    #[test]
    fn iter_lists_all_lines() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x040, 2);
        let mut got: Vec<(u64, u32)> = c.iter().map(|(a, &s)| (a, s)).collect();
        got.sort();
        assert_eq!(got, vec![(0x000, 1), (0x040, 2)]);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x040, 2); // other set
        c.insert(0x080, 3);
        c.insert(0x100, 4); // evicts within set 0 only
        assert!(c.peek(0x040).is_some(), "set 1 untouched");
    }

    #[test]
    fn free_way_detection() {
        let mut c = tiny();
        assert!(c.set_has_free_way(0x000));
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        assert!(!c.set_has_free_way(0x000));
        assert!(c.set_has_free_way(0x040), "other set unaffected");
    }

    #[test]
    fn choose_victim_respects_filter_and_policy() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.get(0x080); // 0x000 becomes LRU
        assert_eq!(c.choose_victim(0x000, |_| true), Some(0x000));
        // If the LRU line is ineligible (e.g. transient), the next one goes.
        assert_eq!(c.choose_victim(0x000, |&s| s != 1), Some(0x080));
        assert_eq!(c.choose_victim(0x000, |_| false), None);
        // choose_victim does not remove.
        assert_eq!(c.len(), 2);
    }

    /// Structural equality witness: same lines, same recency ranks, same
    /// tick/rng — compared through the canonical view plus scalars.
    fn fingerprint(c: &CacheArray<u32>) -> (Vec<(u64, u64, u64, u32)>, u64, u64, u64) {
        (
            c.canonical_lines()
                .into_iter()
                .map(|(a, l, f, &s)| (a, l, f, s))
                .collect(),
            c.tick,
            c.rng_state,
            c.content_digest_uncached(),
        )
    }

    #[test]
    fn journal_rollback_restores_exactly() {
        let mut c = tiny();
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.get(0x000);
        c.enable_journal();
        let before = fingerprint(&c);
        let mark = c.journal_mark();
        // A burst of mutations across both sets, including an eviction.
        c.get(0x080);
        c.insert(0x100, 3); // evicts in set 0
        c.insert(0x040, 4); // set 1
        c.choose_victim(0x000, |_| true);
        c.invalidate(0x040);
        c.get(0x1234); // miss: only the tick moved
        assert_ne!(fingerprint(&c), before);
        assert!(c.journal_bytes_since(mark) > 0);
        c.journal_rollback(mark);
        assert_eq!(fingerprint(&c), before);
    }

    #[test]
    fn journal_supports_nested_marks() {
        let mut c = tiny();
        c.enable_journal();
        c.insert(0x000, 1);
        let outer = c.journal_mark();
        let after_outer = fingerprint(&c);
        c.insert(0x080, 2);
        let inner = c.journal_mark();
        let after_inner = fingerprint(&c);
        c.insert(0x100, 3);
        c.journal_rollback(inner);
        assert_eq!(fingerprint(&c), after_inner);
        c.journal_rollback(outer);
        assert_eq!(fingerprint(&c), after_outer);
    }

    #[test]
    fn incremental_digest_matches_full_rescan() {
        let mut c = tiny();
        assert_eq!(c.content_digest(), c.content_digest_uncached());
        c.insert(0x000, 1);
        c.insert(0x040, 2);
        assert_eq!(c.content_digest(), c.content_digest_uncached());
        c.get(0x000); // recency-only change must still be visible
        let d1 = c.content_digest();
        assert_eq!(d1, c.content_digest_uncached());
        c.insert(0x080, 3);
        c.insert(0x100, 4); // eviction
        c.invalidate(0x040);
        assert_eq!(c.content_digest(), c.content_digest_uncached());
        // Rollback leaves dirty sets behind; the digest must still agree.
        c.enable_journal();
        let m = c.journal_mark();
        let before = c.content_digest();
        c.insert(0x0c0, 9);
        assert_ne!(c.content_digest(), before);
        c.journal_rollback(m);
        assert_eq!(c.content_digest(), before);
        assert_eq!(c.content_digest(), c.content_digest_uncached());
    }

    #[test]
    fn digest_depends_on_recency_ranks_not_ticks() {
        // Two arrays with different absolute tick histories but identical
        // ranks digest identically.
        let mut a = tiny();
        a.insert(0x000, 1);
        a.insert(0x080, 2);
        let mut b = tiny();
        b.get(0x999); // burn ticks on misses
        b.get(0x999);
        b.get(0x999);
        b.insert(0x000, 1);
        b.insert(0x080, 2);
        assert_eq!(a.content_digest_uncached(), b.content_digest_uncached());
        a.get(0x000);
        assert_ne!(
            a.content_digest_uncached(),
            b.content_digest_uncached(),
            "rank change must show up"
        );
    }

    #[test]
    fn fifo_policy_ignores_recency() {
        let mut c: CacheArray<u32> =
            CacheArray::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Fifo);
        c.insert(0x000, 1);
        c.insert(0x080, 2);
        c.get(0x000); // recency refresh must NOT save 0x000 under FIFO
        let ev = c.insert(0x100, 3).unwrap();
        assert_eq!(ev.addr, 0x000);
    }
}
