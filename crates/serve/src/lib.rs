//! `swiftdir-serve`: a durable experiment server for the SwiftDir
//! campaign machinery.
//!
//! The server owns a **job directory** — a filesystem spool that doubles
//! as the wire protocol, so submission works from any process (or shell)
//! with no sockets and no new dependencies:
//!
//! ```text
//! <dir>/queue/<id>.json        submitted jobs (swiftdir.job.v1)
//! <dir>/jobs/<id>/job.json     claimed job (renamed out of the queue)
//! <dir>/jobs/<id>/checkpoint.ckpt   swiftdir.ckpt.v1 work-unit journal
//! <dir>/jobs/<id>/progress.jsonl    swiftdir.progress.v1 heartbeats
//! <dir>/jobs/<id>/result.json      final result (swiftdir.result.v1);
//!                                   its presence marks the job done
//! <dir>/jobs/<id>/cancel           flag file: cooperative cancellation
//! </dir>
//! ```
//!
//! Every completed work unit is journaled to the checkpoint *before*
//! the campaign acknowledges it (see `swiftdir_core::campaign`), so a
//! `kill -9` at any instant loses at most the units in flight. On
//! restart the server scans `jobs/` for claimed-but-unfinished
//! directories and resumes each from its last durable checkpoint
//! record; because every work unit is seeded and self-contained, the
//! resumed campaign's final digest set is **bit-identical** to an
//! uninterrupted run at any thread count.
//!
//! Job specs ride the existing wire formats: fuzz jobs name a seed
//! grid exactly like `swiftdir-fuzz`'s flags, and explore jobs either
//! generate seeded contended streams or embed a `.stream` repro file
//! verbatim.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sim_engine::{CampaignCounters, Json};
use swiftdir_coherence::ProtocolKind;
use swiftdir_core::diff::{contended_stream, tiny_config};
use swiftdir_core::explore::{ExploreConfig, EXPLORE_PHASES};
use swiftdir_core::fuzz::{FuzzConfig, FUZZ_PHASES};
use swiftdir_core::stream::StreamFile;
use swiftdir_core::{
    default_threads, explore_grid_digest, fuzz_grid_digest, run_explore_campaign_resumable,
    run_fuzz_campaign_resumable, CancelToken, CheckpointWriter, CkptHeader, ExploreUnit,
    ProgressConfig, ProgressSink,
};

/// Schema tag on every job spec.
pub const JOB_SCHEMA: &str = "swiftdir.job.v1";

/// Schema tag on every job result.
pub const RESULT_SCHEMA: &str = "swiftdir.result.v1";

/// How often the job runner polls the `cancel` flag file.
const CANCEL_POLL: Duration = Duration::from_millis(50);

/// Per-process suffix keeping concurrently submitted job ids distinct.
static SUBMIT_SEQ: AtomicU64 = AtomicU64::new(0);

fn protocol_name(p: ProtocolKind) -> String {
    format!("{p:?}").to_ascii_lowercase()
}

/// Parses the protocol names the bins accept (`msi|mesi|smesi|swiftdir`).
pub fn parse_protocol(name: &str) -> Result<ProtocolKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "msi" => Ok(ProtocolKind::Msi),
        "mesi" => Ok(ProtocolKind::Mesi),
        "smesi" | "s-mesi" => Ok(ProtocolKind::SMesi),
        "swiftdir" => Ok(ProtocolKind::SwiftDir),
        other => Err(format!("unknown protocol {other:?}")),
    }
}

/// A fuzz job: the same (protocol × seed) grid `swiftdir-fuzz` runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzJob {
    /// Seeds `0..seeds` per protocol.
    pub seeds: u64,
    /// Protocols to sweep; empty means all four.
    pub protocols: Vec<ProtocolKind>,
    /// Per-run operation count override.
    pub ops: Option<usize>,
    /// Per-hop jitter override.
    pub jitter: Option<u64>,
}

impl FuzzJob {
    /// The work-unit grid this job fans out, in grid order.
    pub fn grid(&self) -> Vec<FuzzConfig> {
        let protocols: &[ProtocolKind] = if self.protocols.is_empty() {
            &ProtocolKind::ALL
        } else {
            &self.protocols
        };
        protocols
            .iter()
            .flat_map(|&protocol| {
                (0..self.seeds).map(move |seed| {
                    let mut cfg = FuzzConfig::new(seed, protocol);
                    if let Some(ops) = self.ops {
                        cfg.ops = ops;
                    }
                    if let Some(j) = self.jitter {
                        cfg.jitter_max = j;
                    }
                    cfg
                })
            })
            .collect()
    }
}

/// An explore job: seeded contended streams (like `swiftdir-explore`)
/// or an embedded `.stream` repro file, one schedule tree per unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreJob {
    /// Seeded streams `0..streams` per protocol (ignored when
    /// `stream_text` is set).
    pub streams: u64,
    /// Scenario shape for generated streams.
    pub cores: usize,
    pub blocks: usize,
    pub ops: usize,
    /// Exploration budgets.
    pub window: u64,
    pub max_depth: usize,
    /// Protocols to sweep; empty means all four (or, with an embedded
    /// stream, the protocol recorded in the file).
    pub protocols: Vec<ProtocolKind>,
    /// A `.stream` file embedded verbatim; its ops become the single
    /// stream explored under each protocol.
    pub stream_text: Option<String>,
}

impl Default for ExploreJob {
    fn default() -> Self {
        ExploreJob {
            streams: 4,
            cores: 2,
            blocks: 2,
            ops: 5,
            window: 48,
            max_depth: 4096,
            protocols: Vec::new(),
            stream_text: None,
        }
    }
}

impl ExploreJob {
    /// The work-unit grid plus the exploration budgets.
    ///
    /// # Errors
    ///
    /// Returns a message when the embedded `.stream` text is malformed.
    pub fn grid(&self) -> Result<(Vec<ExploreUnit>, ExploreConfig), String> {
        let ecfg = ExploreConfig {
            window: self.window,
            max_depth: self.max_depth,
            ..ExploreConfig::default()
        };
        let mut units = Vec::new();
        if let Some(text) = &self.stream_text {
            let file = StreamFile::parse(text)?;
            let protocols: Vec<ProtocolKind> = if self.protocols.is_empty() {
                vec![file.protocol]
            } else {
                self.protocols.clone()
            };
            for p in protocols {
                units.push(ExploreUnit {
                    cfg: tiny_config(file.cores, p),
                    stream: file.ops.clone(),
                });
            }
        } else {
            let protocols: &[ProtocolKind] = if self.protocols.is_empty() {
                &ProtocolKind::ALL
            } else {
                &self.protocols
            };
            for &p in protocols {
                let cfg = tiny_config(self.cores, p);
                for seed in 0..self.streams {
                    units.push(ExploreUnit {
                        cfg,
                        stream: contended_stream(seed, self.cores, self.blocks, self.ops, 0.3),
                    });
                }
            }
        }
        Ok((units, ecfg))
    }
}

/// What kind of work a job runs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    Fuzz(FuzzJob),
    Explore(ExploreJob),
}

impl JobKind {
    /// The wire name (`"fuzz"` / `"explore"`).
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Fuzz(_) => "fuzz",
            JobKind::Explore(_) => "explore",
        }
    }
}

/// One submitted job: the `swiftdir.job.v1` wire object.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Server-assigned id (empty until submitted).
    pub id: String,
    /// Worker-thread override for the campaign pool.
    pub threads: Option<usize>,
    pub kind: JobKind,
}

impl JobSpec {
    pub fn to_json(&self) -> Json {
        let mut m = vec![
            ("schema".to_string(), Json::from(JOB_SCHEMA)),
            ("id".to_string(), Json::Str(self.id.clone())),
            ("kind".to_string(), Json::from(self.kind.name())),
        ];
        if let Some(t) = self.threads {
            m.push(("threads".to_string(), Json::Uint(t as u64)));
        }
        let protocols =
            |ps: &[ProtocolKind]| Json::array(ps.iter().map(|&p| Json::Str(protocol_name(p))));
        match &self.kind {
            JobKind::Fuzz(f) => {
                m.push(("seeds".to_string(), Json::Uint(f.seeds)));
                if !f.protocols.is_empty() {
                    m.push(("protocols".to_string(), protocols(&f.protocols)));
                }
                if let Some(ops) = f.ops {
                    m.push(("ops".to_string(), Json::Uint(ops as u64)));
                }
                if let Some(j) = f.jitter {
                    m.push(("jitter".to_string(), Json::Uint(j)));
                }
            }
            JobKind::Explore(e) => {
                m.push(("streams".to_string(), Json::Uint(e.streams)));
                m.push(("cores".to_string(), Json::Uint(e.cores as u64)));
                m.push(("blocks".to_string(), Json::Uint(e.blocks as u64)));
                m.push(("ops".to_string(), Json::Uint(e.ops as u64)));
                m.push(("window".to_string(), Json::Uint(e.window)));
                m.push(("max_depth".to_string(), Json::Uint(e.max_depth as u64)));
                if !e.protocols.is_empty() {
                    m.push(("protocols".to_string(), protocols(&e.protocols)));
                }
                if let Some(text) = &e.stream_text {
                    m.push(("stream".to_string(), Json::Str(text.clone())));
                }
            }
        }
        Json::Object(m)
    }

    /// Parses a job spec, tolerating unknown fields.
    ///
    /// # Errors
    ///
    /// Returns a message on a foreign schema, unknown kind, or unknown
    /// protocol name.
    pub fn parse(j: &Json) -> Result<JobSpec, String> {
        let schema = j
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("job has no schema tag")?;
        if !schema.starts_with("swiftdir.job.") {
            return Err(format!("not a job spec (schema {schema:?})"));
        }
        let u = |k: &str| j.get(k).and_then(Json::as_u64);
        let protocols = j
            .get("protocols")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|p| parse_protocol(p.as_str().unwrap_or_default()))
            .collect::<Result<Vec<_>, _>>()?;
        let kind = match j.get("kind").and_then(Json::as_str).unwrap_or_default() {
            "fuzz" => JobKind::Fuzz(FuzzJob {
                seeds: u("seeds").unwrap_or(100),
                protocols,
                ops: u("ops").map(|v| v as usize),
                jitter: u("jitter"),
            }),
            "explore" => {
                let d = ExploreJob::default();
                JobKind::Explore(ExploreJob {
                    streams: u("streams").unwrap_or(d.streams),
                    cores: u("cores").map_or(d.cores, |v| v as usize),
                    blocks: u("blocks").map_or(d.blocks, |v| v as usize),
                    ops: u("ops").map_or(d.ops, |v| v as usize),
                    window: u("window").unwrap_or(d.window),
                    max_depth: u("max_depth").map_or(d.max_depth, |v| v as usize),
                    protocols,
                    stream_text: j.get("stream").and_then(Json::as_str).map(str::to_string),
                })
            }
            other => return Err(format!("unknown job kind {other:?}")),
        };
        Ok(JobSpec {
            id: j
                .get("id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            threads: u("threads").map(|v| v as usize),
            kind,
        })
    }
}

/// A finished job: the `swiftdir.result.v1` wire object. Its presence
/// on disk (`result.json`) is what marks a job done.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    pub id: String,
    pub kind: String,
    /// Completed with zero failing units and no cancellation.
    pub ok: bool,
    /// Stopped early by the `cancel` flag file.
    pub cancelled: bool,
    /// Completed work units (resumed + fresh).
    pub units: u64,
    /// Units run by the final invocation.
    pub fresh: u64,
    /// Units replayed from the checkpoint journal.
    pub resumed: u64,
    /// Units whose record carries a failure.
    pub failures: u64,
    /// The campaign's final digest set (`digest_set_fnv`) — the value
    /// the kill/resume determinism guarantee is stated over.
    pub digest_set: u64,
}

impl JobResult {
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::from(RESULT_SCHEMA)),
            ("id", Json::Str(self.id.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("ok", Json::Bool(self.ok)),
            ("cancelled", Json::Bool(self.cancelled)),
            ("units", Json::Uint(self.units)),
            ("fresh", Json::Uint(self.fresh)),
            ("resumed", Json::Uint(self.resumed)),
            ("failures", Json::Uint(self.failures)),
            ("digest_set", Json::Uint(self.digest_set)),
        ])
    }

    /// Parses a result, tolerating unknown fields.
    ///
    /// # Errors
    ///
    /// Returns a message on a foreign schema tag.
    pub fn parse(j: &Json) -> Result<JobResult, String> {
        let schema = j
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("result has no schema tag")?;
        if !schema.starts_with("swiftdir.result.") {
            return Err(format!("not a job result (schema {schema:?})"));
        }
        let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let b = |k: &str| matches!(j.get(k), Some(Json::Bool(true)));
        Ok(JobResult {
            id: j
                .get("id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            kind: j
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            ok: b("ok"),
            cancelled: b("cancelled"),
            units: u("units"),
            fresh: u("fresh"),
            resumed: u("resumed"),
            failures: u("failures"),
            digest_set: u("digest_set"),
        })
    }
}

/// Where a job stands, as visible from the spool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet claimed by a server.
    Queued,
    /// Claimed but unfinished: running now, or awaiting resume after a
    /// kill — indistinguishable from outside the server process.
    InFlight,
    /// `result.json` present.
    Done,
}

/// One row of `swiftdir-serve status`.
#[derive(Debug, Clone)]
pub struct JobStatus {
    pub id: String,
    pub state: JobState,
    /// The parsed result, when done.
    pub result: Option<JobResult>,
    /// `(done, total)` from the job's last durable heartbeat.
    pub progress: Option<(u64, u64)>,
}

/// What one `Server::run` invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs claimed from the queue and run.
    pub jobs_run: usize,
    /// Interrupted jobs resumed from their checkpoints at startup.
    pub jobs_resumed: usize,
}

/// The job-directory server. All state lives under `dir`; any number
/// of submitters may write the queue while one server drains it.
#[derive(Debug, Clone)]
pub struct Server {
    dir: PathBuf,
    /// Queue poll interval when idle (non-drain mode).
    pub poll: Duration,
}

impl Server {
    pub fn new(dir: impl Into<PathBuf>) -> Server {
        Server {
            dir: dir.into(),
            poll: Duration::from_millis(200),
        }
    }

    /// The spool root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn queue_dir(&self) -> PathBuf {
        self.dir.join("queue")
    }

    fn jobs_dir(&self) -> PathBuf {
        self.dir.join("jobs")
    }

    /// The directory holding one job's journal, heartbeats, and result.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.jobs_dir().join(id)
    }

    /// Submits `spec` to the queue, assigning and returning its id.
    /// The queue file lands atomically (write + rename), so a server
    /// mid-scan never sees a half-written spec.
    ///
    /// # Errors
    ///
    /// Propagates spool I/O failures.
    pub fn submit(&self, spec: &JobSpec) -> io::Result<String> {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let id = format!(
            "j{secs:012}-{:06}-{:04}",
            std::process::id(),
            SUBMIT_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let spec = JobSpec {
            id: id.clone(),
            ..spec.clone()
        };
        std::fs::create_dir_all(self.queue_dir())?;
        write_atomic(
            &self.queue_dir().join(format!("{id}.json")),
            &render(&spec.to_json()),
        )?;
        Ok(id)
    }

    /// Trips a job's cancel flag. Returns whether the job exists (in
    /// the queue or claimed). Cancelling a queued job marks it so the
    /// server finishes it immediately with a cancelled result.
    ///
    /// # Errors
    ///
    /// Propagates spool I/O failures.
    pub fn cancel(&self, id: &str) -> io::Result<bool> {
        let claimed = self.job_dir(id);
        if claimed.exists() {
            std::fs::write(claimed.join("cancel"), b"")?;
            return Ok(true);
        }
        let queued = self.queue_dir().join(format!("{id}.json"));
        if queued.exists() {
            std::fs::create_dir_all(&claimed)?;
            std::fs::write(claimed.join("cancel"), b"")?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Every job the spool knows about, queued first, then claimed,
    /// each group sorted by id (submission order).
    ///
    /// # Errors
    ///
    /// Propagates spool I/O failures.
    pub fn status(&self) -> io::Result<Vec<JobStatus>> {
        let mut rows = Vec::new();
        for id in sorted_ids(&self.queue_dir(), ".json")? {
            rows.push(JobStatus {
                id,
                state: JobState::Queued,
                result: None,
                progress: None,
            });
        }
        for id in sorted_ids(&self.jobs_dir(), "")? {
            let jdir = self.job_dir(&id);
            let result = std::fs::read_to_string(jdir.join("result.json"))
                .ok()
                .and_then(|t| Json::parse(&t).ok())
                .and_then(|j| JobResult::parse(&j).ok());
            let progress = last_heartbeat(&jdir.join("progress.jsonl"));
            rows.push(JobStatus {
                state: if result.is_some() {
                    JobState::Done
                } else {
                    JobState::InFlight
                },
                id,
                result,
                progress,
            });
        }
        Ok(rows)
    }

    /// Runs the server: first resumes every claimed-but-unfinished job
    /// (the `kill -9` recovery path), then drains the queue. With
    /// `drain` the call returns once the queue is empty; otherwise it
    /// keeps polling until `stop` is tripped (checked between jobs and
    /// between polls — in-flight jobs finish their current units and
    /// checkpoint, exactly like a cancel).
    ///
    /// # Errors
    ///
    /// Propagates spool I/O failures. A malformed queued spec is not
    /// fatal: it is reported on stderr and moved aside as
    /// `<id>.json.rejected`.
    pub fn run(&self, drain: bool, stop: Option<&CancelToken>) -> io::Result<ServeSummary> {
        std::fs::create_dir_all(self.queue_dir())?;
        std::fs::create_dir_all(self.jobs_dir())?;
        let stopped = || stop.is_some_and(CancelToken::is_cancelled);
        let mut summary = ServeSummary::default();

        // Recovery pass: anything claimed without a result was
        // interrupted (by a kill or a stop) — resume it first, in
        // submission order.
        for id in sorted_ids(&self.jobs_dir(), "")? {
            if stopped() {
                return Ok(summary);
            }
            let jdir = self.job_dir(&id);
            if jdir.join("result.json").exists() || !jdir.join("job.json").exists() {
                continue;
            }
            let spec = read_spec(&jdir.join("job.json"))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let result = self.run_job(&spec, stop)?;
            summary.jobs_resumed += 1;
            eprintln!(
                "swiftdir-serve: resumed {id}: {} units ({} fresh), digest_set {:#018x}",
                result.units, result.fresh, result.digest_set
            );
        }

        loop {
            if stopped() {
                return Ok(summary);
            }
            match self.claim_next()? {
                Some(spec) => {
                    let result = self.run_job(&spec, stop)?;
                    summary.jobs_run += 1;
                    eprintln!(
                        "swiftdir-serve: finished {}: ok={} {} units, digest_set {:#018x}",
                        spec.id, result.ok, result.units, result.digest_set
                    );
                }
                None if drain => return Ok(summary),
                None => std::thread::sleep(self.poll),
            }
        }
    }

    /// Claims the oldest queued job: renames its spec into the job
    /// directory (rename is the commit point — a killed server never
    /// leaves a job both queued and claimed).
    fn claim_next(&self) -> io::Result<Option<JobSpec>> {
        for id in sorted_ids(&self.queue_dir(), ".json")? {
            let queued = self.queue_dir().join(format!("{id}.json"));
            let jdir = self.job_dir(&id);
            std::fs::create_dir_all(&jdir)?;
            std::fs::rename(&queued, jdir.join("job.json"))?;
            match read_spec(&jdir.join("job.json")) {
                Ok(spec) => return Ok(Some(spec)),
                Err(e) => {
                    eprintln!("swiftdir-serve: rejecting {id}: {e}");
                    std::fs::rename(
                        jdir.join("job.json"),
                        self.queue_dir().join(format!("{id}.json.rejected")),
                    )?;
                }
            }
        }
        Ok(None)
    }

    /// Runs (or resumes) one claimed job to its result. The campaign
    /// checkpoints every completed unit; the result file lands
    /// atomically at the end, so a kill anywhere in between leaves a
    /// resumable job, never a half-done "done".
    ///
    /// # Errors
    ///
    /// Propagates journal/result I/O failures.
    pub fn run_job(&self, spec: &JobSpec, stop: Option<&CancelToken>) -> io::Result<JobResult> {
        let jdir = self.job_dir(&spec.id);
        let ckpt_path = jdir.join("checkpoint.ckpt");
        let resuming = ckpt_path.exists();
        let threads = spec.threads.unwrap_or_else(default_threads);

        // Cancellation: the job's flag file, the server's stop token,
        // or both. A watcher thread folds the flag file into the
        // in-process token at CANCEL_POLL granularity.
        let token = CancelToken::new();
        // Synchronous pre-check: a job cancelled while still queued
        // must not claim a single unit.
        if jdir.join("cancel").exists() || stop.is_some_and(CancelToken::is_cancelled) {
            token.cancel();
        }
        let watch_stop = Arc::new(AtomicBool::new(false));
        let watcher = {
            let token = token.clone();
            let stop = stop.cloned();
            let flag = jdir.join("cancel");
            let watch_stop = Arc::clone(&watch_stop);
            std::thread::spawn(move || {
                while !watch_stop.load(Ordering::Relaxed) {
                    if flag.exists() || stop.as_ref().is_some_and(CancelToken::is_cancelled) {
                        token.cancel();
                        break;
                    }
                    std::thread::sleep(CANCEL_POLL);
                }
            })
        };

        let pcfg = ProgressConfig {
            sink: Some(ProgressSink::File(jdir.join("progress.jsonl"))),
            interval: Duration::from_millis(100),
        };
        let build_sampler = |counters: CampaignCounters| {
            if resuming {
                pcfg.build_resumed(counters)
            } else {
                pcfg.build(counters)
            }
        };

        let (outcome_units, fresh, resumed, cancelled, digest_set, failures, complete);
        match &spec.kind {
            JobKind::Fuzz(f) => {
                let grid = f.grid();
                let header = CkptHeader {
                    kind: "fuzz".to_string(),
                    campaign: spec.id.clone(),
                    config_digest: fuzz_grid_digest(&grid),
                    total: grid.len() as u64,
                };
                let (mut writer, resumed_units) = CheckpointWriter::resume(&ckpt_path, &header)?;
                let sampler = build_sampler(CampaignCounters::new("fuzz", threads, &FUZZ_PHASES))?;
                let out = run_fuzz_campaign_resumable(
                    &grid,
                    Some(threads),
                    sampler.as_ref(),
                    Some(&mut writer),
                    resumed_units,
                    Some(&token),
                )?;
                if let Some(s) = &sampler {
                    if out.complete() {
                        s.finish();
                    }
                }
                complete = out.complete();
                digest_set = out.digest_set_fnv();
                failures = out.failures() as u64;
                (outcome_units, fresh, resumed, cancelled) = (
                    out.units.len() as u64,
                    out.fresh as u64,
                    out.resumed as u64,
                    out.cancelled,
                );
            }
            JobKind::Explore(e) => {
                let (grid, ecfg) = e
                    .grid()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let header = CkptHeader {
                    kind: "explore".to_string(),
                    campaign: spec.id.clone(),
                    config_digest: explore_grid_digest(&grid, &ecfg),
                    total: grid.len() as u64,
                };
                let (mut writer, resumed_units) = CheckpointWriter::resume(&ckpt_path, &header)?;
                let sampler =
                    build_sampler(CampaignCounters::new("explore", threads, &EXPLORE_PHASES))?;
                let out = run_explore_campaign_resumable(
                    &grid,
                    &ecfg,
                    Some(threads),
                    sampler.as_ref(),
                    Some(&mut writer),
                    resumed_units,
                    Some(&token),
                )?;
                if let Some(s) = &sampler {
                    if out.complete() {
                        s.finish();
                    }
                }
                complete = out.complete();
                digest_set = out.digest_set_fnv();
                failures = out.failures() as u64;
                (outcome_units, fresh, resumed, cancelled) = (
                    out.units.len() as u64,
                    out.fresh as u64,
                    out.resumed as u64,
                    out.cancelled,
                );
            }
        }
        watch_stop.store(true, Ordering::Relaxed);
        let _ = watcher.join();

        let result = JobResult {
            id: spec.id.clone(),
            kind: spec.kind.name().to_string(),
            ok: complete && failures == 0,
            cancelled,
            units: outcome_units,
            fresh,
            resumed,
            failures,
            digest_set,
        };
        // A server *stop* leaves the job resumable; a per-job *cancel*
        // finalizes it as cancelled so a restart will not revive it.
        let job_cancelled = cancelled && !stop.is_some_and(CancelToken::is_cancelled);
        if complete || job_cancelled {
            write_atomic(&jdir.join("result.json"), &render(&result.to_json()))?;
        }
        Ok(result)
    }
}

/// Entry names under `dir` with `suffix` stripped, sorted (ids embed
/// the submission timestamp, so lexicographic order is queue order).
fn sorted_ids(dir: &Path, suffix: &str) -> io::Result<Vec<String>> {
    let mut ids = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ids),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name.strip_suffix(suffix) {
            ids.push(id.to_string());
        }
    }
    ids.sort();
    Ok(ids)
}

fn read_spec(path: &Path) -> Result<JobSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let j = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    JobSpec::parse(&j)
}

/// `(done, total)` from the last parseable heartbeat line, if any.
fn last_heartbeat(path: &Path) -> Option<(u64, u64)> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .rev()
        .find_map(|l| sim_engine::ProgressRecord::parse_line(l).ok())
        .map(|r| (r.done, r.total))
}

fn render(j: &Json) -> String {
    let mut s = String::new();
    j.write(&mut s);
    s.push('\n');
    s
}

/// Writes `text` then renames into place, so readers only ever see a
/// complete file.
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftdir_core::Checkpoint;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swiftdir-serve-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_fuzz_spec() -> JobSpec {
        JobSpec {
            id: String::new(),
            threads: Some(2),
            kind: JobKind::Fuzz(FuzzJob {
                seeds: 4,
                protocols: vec![ProtocolKind::SwiftDir, ProtocolKind::Mesi],
                ops: Some(40),
                jitter: None,
            }),
        }
    }

    #[test]
    fn job_and_result_wire_formats_round_trip() {
        let mut spec = small_fuzz_spec();
        spec.id = "j42".to_string();
        assert_eq!(JobSpec::parse(&spec.to_json()).unwrap(), spec);

        let explore = JobSpec {
            id: "j43".to_string(),
            threads: None,
            kind: JobKind::Explore(ExploreJob {
                protocols: vec![ProtocolKind::Msi],
                stream_text: Some("# swiftdir-stream v1\n0 0 L 0x0\n".to_string()),
                ..ExploreJob::default()
            }),
        };
        assert_eq!(JobSpec::parse(&explore.to_json()).unwrap(), explore);

        let result = JobResult {
            id: "j42".to_string(),
            kind: "fuzz".to_string(),
            ok: true,
            cancelled: false,
            units: 8,
            fresh: 5,
            resumed: 3,
            failures: 0,
            digest_set: u64::MAX - 7,
        };
        assert_eq!(JobResult::parse(&result.to_json()).unwrap(), result);

        assert!(JobSpec::parse(&Json::object([("schema", Json::from("nope"))])).is_err());
    }

    #[test]
    fn submit_drain_produces_a_result_and_status_tracks_it() {
        let server = Server::new(tempdir("drain"));
        let id = server.submit(&small_fuzz_spec()).unwrap();

        let rows = server.status().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].state, JobState::Queued);

        let summary = server.run(true, None).unwrap();
        assert_eq!(summary.jobs_run, 1);

        let rows = server.status().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].state, JobState::Done);
        let result = rows[0].result.as_ref().unwrap();
        assert!(result.ok);
        assert_eq!(result.id, id);
        assert_eq!(result.units, 8);
        assert_eq!(result.resumed, 0);
        // The checkpoint journal agrees with the published digest set.
        let ckpt = Checkpoint::load(&server.job_dir(&id).join("checkpoint.ckpt"))
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.digest_set_fnv(), result.digest_set);
        std::fs::remove_dir_all(server.dir()).ok();
    }

    #[test]
    fn interrupted_job_resumes_to_the_uninterrupted_digest_set() {
        // Baseline: an uninterrupted run of the same spec.
        let baseline = Server::new(tempdir("resume-base"));
        let base_id = baseline.submit(&small_fuzz_spec()).unwrap();
        baseline.run(true, None).unwrap();
        let base = baseline.status().unwrap()[0].result.clone().unwrap();

        // Interrupted: claim the job, journal only a prefix of the
        // units (what a kill -9 mid-campaign leaves), then restart.
        let server = Server::new(tempdir("resume-cut"));
        let id = server.submit(&small_fuzz_spec()).unwrap();
        let jdir = server.job_dir(&id);
        std::fs::create_dir_all(&jdir).unwrap();
        std::fs::rename(
            server.dir().join("queue").join(format!("{id}.json")),
            jdir.join("job.json"),
        )
        .unwrap();
        let full = Checkpoint::load(&baseline.job_dir(&base_id).join("checkpoint.ckpt"))
            .unwrap()
            .unwrap();
        let grid = match &small_fuzz_spec().kind {
            JobKind::Fuzz(f) => f.grid(),
            _ => unreachable!(),
        };
        let header = CkptHeader {
            kind: "fuzz".to_string(),
            campaign: id.clone(),
            config_digest: fuzz_grid_digest(&grid),
            total: grid.len() as u64,
        };
        let mut w = CheckpointWriter::create(&jdir.join("checkpoint.ckpt"), &header).unwrap();
        for u in &full.units[..3] {
            w.record(u).unwrap();
        }
        drop(w);

        let summary = server.run(true, None).unwrap();
        assert_eq!(summary.jobs_resumed, 1);
        let resumed = server.status().unwrap()[0].result.clone().unwrap();
        assert!(resumed.ok);
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.fresh, 5);
        assert_eq!(
            resumed.digest_set, base.digest_set,
            "resume must be bit-identical to the uninterrupted run"
        );
        std::fs::remove_dir_all(baseline.dir()).ok();
        std::fs::remove_dir_all(server.dir()).ok();
    }

    #[test]
    fn cancelled_queued_job_finishes_as_cancelled_not_ok() {
        let server = Server::new(tempdir("cancel"));
        let id = server.submit(&small_fuzz_spec()).unwrap();
        assert!(server.cancel(&id).unwrap());
        assert!(!server.cancel("no-such-job").unwrap());

        server.run(true, None).unwrap();
        let result = server.status().unwrap()[0].result.clone().unwrap();
        assert!(result.cancelled);
        assert!(!result.ok);
        assert_eq!(result.fresh, 0, "a pre-cancelled job must run nothing");
        std::fs::remove_dir_all(server.dir()).ok();
    }

    #[test]
    fn explore_job_runs_and_checkpoints() {
        let server = Server::new(tempdir("explore"));
        let id = server
            .submit(&JobSpec {
                id: String::new(),
                threads: Some(2),
                kind: JobKind::Explore(ExploreJob {
                    streams: 2,
                    protocols: vec![ProtocolKind::SwiftDir],
                    ..ExploreJob::default()
                }),
            })
            .unwrap();
        server.run(true, None).unwrap();
        let result = server.status().unwrap()[0].result.clone().unwrap();
        assert!(result.ok, "{result:?}");
        assert_eq!(result.units, 2);
        let ckpt = Checkpoint::load(&server.job_dir(&id).join("checkpoint.ckpt"))
            .unwrap()
            .unwrap();
        assert_eq!(ckpt.header.kind, "explore");
        assert!(ckpt.units.iter().all(|u| u.schedules > 0));
        std::fs::remove_dir_all(server.dir()).ok();
    }
}
