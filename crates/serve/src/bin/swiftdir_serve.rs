//! `swiftdir-serve`: the durable campaign server and its client modes.
//!
//! ```text
//! swiftdir-serve run    --dir D [--drain] [--poll-ms N]
//! swiftdir-serve submit --dir D --fuzz [--seeds N] [--protocol NAME]
//!                       [--ops N] [--jitter N] [--threads N]
//! swiftdir-serve submit --dir D --explore [--streams N] [--cores N]
//!                       [--blocks N] [--ops N] [--window N] [--depth N]
//!                       [--protocol NAME] [--stream FILE] [--threads N]
//! swiftdir-serve status --dir D
//! swiftdir-serve cancel --dir D ID
//! ```
//!
//! * `run` — serve the job directory: resume any job interrupted by a
//!   kill, then drain the queue (`--drain` exits when empty; otherwise
//!   the server polls forever). Every completed work unit is journaled
//!   before it is acknowledged, so `kill -9` at any instant loses only
//!   in-flight units and a restart finishes the campaign with a final
//!   digest set bit-identical to an uninterrupted run.
//! * `submit` — enqueue a fuzz or explore job and print its id.
//! * `status` — one line per job the spool knows about.
//! * `cancel` — trip a job's cancel flag (unit-granular, cooperative).
//!
//! Per-job artifacts live under `D/jobs/<id>/`: `checkpoint.ckpt`
//! (`swiftdir.ckpt.v1`), `progress.jsonl` (`swiftdir.progress.v1` —
//! follow live with `swiftdir-report --follow`), and `result.json`
//! (`swiftdir.result.v1`).

use std::process::ExitCode;
use std::time::Duration;

use swiftdir_serve::{parse_protocol, ExploreJob, FuzzJob, JobKind, JobSpec, JobState, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("swiftdir-serve: expected a command (run|submit|status|cancel)");
        return ExitCode::FAILURE;
    };
    match run_command(command, &args[1..]) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("swiftdir-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_command(command: &str, rest: &[String]) -> Result<ExitCode, String> {
    match command {
        "run" => cmd_run(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "cancel" => cmd_cancel(rest),
        other => Err(format!(
            "unknown command {other:?} (run|submit|status|cancel)"
        )),
    }
}

/// Pulls `--dir` out of the flag list; every command requires it.
fn take_dir(rest: &[String]) -> Result<(Server, Vec<String>), String> {
    let mut dir = None;
    let mut left = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--dir" {
            dir = Some(it.next().ok_or("--dir expects a value")?.clone());
        } else {
            left.push(flag.clone());
        }
    }
    let dir = dir.ok_or("--dir DIR is required")?;
    Ok((Server::new(dir), left))
}

fn cmd_run(rest: &[String]) -> Result<ExitCode, String> {
    let (mut server, rest) = take_dir(rest)?;
    let mut drain = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--drain" => drain = true,
            "--poll-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--poll-ms expects a value")?
                    .parse()
                    .map_err(|e| format!("--poll-ms: {e}"))?;
                server.poll = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown run flag {other:?}")),
        }
    }
    let summary = server.run(drain, None).map_err(|e| e.to_string())?;
    println!(
        "swiftdir-serve: {} jobs run, {} resumed",
        summary.jobs_run, summary.jobs_resumed
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_submit(rest: &[String]) -> Result<ExitCode, String> {
    let (server, rest) = take_dir(rest)?;
    let mut kind: Option<&str> = None;
    let mut threads = None;
    let mut fuzz = FuzzJob {
        seeds: 100,
        protocols: Vec::new(),
        ops: None,
        jitter: None,
    };
    let mut explore = ExploreJob::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} expects a value"))
        };
        let parse = |v: &str, name: &str| v.parse::<u64>().map_err(|e| format!("{name}: {e}"));
        match flag.as_str() {
            "--fuzz" => kind = Some("fuzz"),
            "--explore" => kind = Some("explore"),
            "--threads" => threads = Some(parse(value("--threads")?, "--threads")? as usize),
            "--seeds" => fuzz.seeds = parse(value("--seeds")?, "--seeds")?,
            "--jitter" => fuzz.jitter = Some(parse(value("--jitter")?, "--jitter")?),
            "--streams" => explore.streams = parse(value("--streams")?, "--streams")?,
            "--cores" => explore.cores = parse(value("--cores")?, "--cores")? as usize,
            "--blocks" => explore.blocks = parse(value("--blocks")?, "--blocks")? as usize,
            "--window" => explore.window = parse(value("--window")?, "--window")?,
            "--depth" => explore.max_depth = parse(value("--depth")?, "--depth")? as usize,
            "--ops" => {
                let ops = parse(value("--ops")?, "--ops")? as usize;
                fuzz.ops = Some(ops);
                explore.ops = ops;
            }
            "--protocol" => {
                let p = parse_protocol(value("--protocol")?)?;
                fuzz.protocols.push(p);
                explore.protocols.push(p);
            }
            "--stream" => {
                let path = value("--stream")?;
                explore.stream_text = Some(
                    std::fs::read_to_string(path).map_err(|e| format!("--stream {path}: {e}"))?,
                );
            }
            other => return Err(format!("unknown submit flag {other:?}")),
        }
    }
    let kind = match kind.ok_or("submit needs --fuzz or --explore")? {
        "fuzz" => JobKind::Fuzz(fuzz),
        _ => JobKind::Explore(explore),
    };
    let id = server
        .submit(&JobSpec {
            id: String::new(),
            threads,
            kind,
        })
        .map_err(|e| e.to_string())?;
    println!("{id}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_status(rest: &[String]) -> Result<ExitCode, String> {
    let (server, rest) = take_dir(rest)?;
    if let Some(flag) = rest.first() {
        return Err(format!("unknown status flag {flag:?}"));
    }
    let rows = server.status().map_err(|e| e.to_string())?;
    if rows.is_empty() {
        println!("swiftdir-serve: no jobs");
        return Ok(ExitCode::SUCCESS);
    }
    for row in rows {
        match row.state {
            JobState::Queued => println!("{}  queued", row.id),
            JobState::InFlight => {
                let progress = row
                    .progress
                    .map(|(done, total)| format!(" {done}/{total}"))
                    .unwrap_or_default();
                println!("{}  in-flight{progress}", row.id);
            }
            JobState::Done => {
                let r = row.result.expect("done state implies a result");
                println!(
                    "{}  done  ok={} cancelled={} units={} (fresh {}, resumed {}) \
                     failures={} digest_set={:#018x}",
                    row.id,
                    r.ok,
                    r.cancelled,
                    r.units,
                    r.fresh,
                    r.resumed,
                    r.failures,
                    r.digest_set
                );
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_cancel(rest: &[String]) -> Result<ExitCode, String> {
    let (server, rest) = take_dir(rest)?;
    let [id] = rest.as_slice() else {
        return Err("cancel expects exactly one job id".to_string());
    };
    if server.cancel(id).map_err(|e| e.to_string())? {
        println!("swiftdir-serve: cancel requested for {id}");
        Ok(ExitCode::SUCCESS)
    } else {
        Err(format!("no such job {id:?}"))
    }
}
