//! Rendering and validation for `swiftdir.progress.v1` heartbeat
//! streams (see `sim_engine::progress` and DESIGN.md §12).
//!
//! Two consumers share this module: `swiftdir-report --follow` renders
//! each heartbeat as a [`ticker_line`] and the campaign's last record
//! as a [`final_summary`]; `swiftdir-report --check-progress` (and the
//! CI smoke leg behind it) runs [`check_progress_text`], which enforces
//! the stream invariants the sampler promises — parseable lines,
//! strictly increasing `seq`, monotone progress counters, a single
//! final record in last position, phase sums bounded by wall time, and
//! gauge high-water marks that dominate their current values.

use std::fmt::Write as _;

use sim_engine::ProgressRecord;

/// Slack for floating-point comparisons between independently read
/// clocks (phase timers vs. the campaign clock).
const CLOCK_EPS: f64 = 1e-6;

/// What a validated heartbeat stream looked like.
#[derive(Debug, Clone)]
pub struct ProgressCheck {
    /// Number of heartbeat records in the stream.
    pub records: usize,
    /// The campaign's final record.
    pub final_record: ProgressRecord,
}

/// One line of live campaign state, fit for a TTY status ticker.
pub fn ticker_line(rec: &ProgressRecord) -> String {
    let mut line = format!(
        "{} {:>3.0}% {}/{}",
        rec.campaign,
        rec.fraction * 100.0,
        rec.done,
        rec.total,
    );
    if rec.resumed {
        line.push_str(" (resumed)");
    }
    match rec.eta_s {
        Some(eta) if !rec.is_final => {
            let _ = write!(line, " eta {}", human_secs(eta));
        }
        _ => {}
    }
    let _ = write!(line, " | {:.1} u/s", rec.units_per_s);
    if rec.events > 0 {
        let _ = write!(line, " {} ev/s", human_count(rec.events_per_s));
    }
    if rec.schedules > 0 {
        let _ = write!(line, " {} sched/s", human_count(rec.schedules_per_s));
    }
    let _ = write!(line, " | {}/{} busy", rec.busy_workers(), rec.workers.len());
    if let Some(peak) = rec
        .memory
        .iter()
        .filter(|(name, _)| name.ends_with("_bytes"))
        .map(|(_, g)| g.current)
        .max()
    {
        if peak > 0 {
            let _ = write!(line, " | {}", human_bytes(peak));
        }
    }
    if rec.is_final {
        line.push_str(" | done");
    }
    line
}

/// The end-of-campaign summary rendered from the final record.
pub fn final_summary(rec: &ProgressRecord) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign {}: {}/{} units in {}{} ({:.1} units/s)",
        rec.campaign,
        rec.done,
        rec.total,
        human_secs(rec.elapsed_s),
        if rec.resumed { " after resume" } else { "" },
        rec.units_per_s,
    );
    if rec.events > 0 {
        let _ = writeln!(
            out,
            "  events    {} ({} /s)",
            rec.events,
            human_count(rec.events_per_s)
        );
    }
    if rec.schedules > 0 {
        let _ = writeln!(
            out,
            "  schedules {} ({} /s), {} steps",
            rec.schedules,
            human_count(rec.schedules_per_s),
            rec.steps,
        );
    }
    if !rec.phases.is_empty() {
        let total: f64 = rec.phase_sum_s().max(f64::MIN_POSITIVE);
        let line = rec
            .phases
            .iter()
            .map(|(name, s)| format!("{name} {} ({:.0}%)", human_secs(*s), 100.0 * s / total))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  phases    {line}");
    }
    for w in &rec.workers {
        let _ = writeln!(
            out,
            "  worker {:>2}  {} done / {} claimed, busy {}",
            w.id,
            w.done,
            w.claimed,
            human_secs(w.busy_s),
        );
    }
    for (name, g) in &rec.memory {
        if g.high == 0 {
            continue;
        }
        let render = if name.ends_with("_bytes") {
            human_bytes
        } else {
            |v: u64| v.to_string()
        };
        let _ = writeln!(
            out,
            "  mem {:<12} {} now, {} peak",
            name,
            render(g.current),
            render(g.high),
        );
    }
    out
}

/// Validates a whole heartbeat stream (the text of one JSONL file).
///
/// # Errors
///
/// Every violated invariant, one message per finding. An empty stream
/// is an error (a finished campaign emits at least its final record).
pub fn check_progress_text(text: &str) -> Result<ProgressCheck, Vec<String>> {
    let mut errors = Vec::new();
    let mut records: Vec<ProgressRecord> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match ProgressRecord::parse_line(line) {
            Ok(rec) => records.push(rec),
            Err(e) => errors.push(format!("line {}: {e}", i + 1)),
        }
    }
    if records.is_empty() && errors.is_empty() {
        errors.push("stream has no heartbeat records".to_string());
    }

    for pair in records.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let at = format!("seq {} -> {}", a.seq, b.seq);
        if b.seq <= a.seq {
            errors.push(format!("{at}: seq not strictly increasing"));
        }
        if b.done < a.done {
            errors.push(format!(
                "{at}: done went backwards ({} -> {})",
                a.done, b.done
            ));
        }
        if b.events < a.events {
            errors.push(format!(
                "{at}: events went backwards ({} -> {})",
                a.events, b.events
            ));
        }
        // A resumed record legitimately restarts the wall clock (the
        // process was killed and relaunched); `done`/`events` stay
        // monotone across the gap because the resumed campaign
        // pre-seeds its counters from the checkpoint.
        if b.elapsed_s + CLOCK_EPS < a.elapsed_s && !b.resumed {
            errors.push(format!("{at}: elapsed_s went backwards"));
        }
    }

    for rec in &records {
        let at = format!("seq {}", rec.seq);
        if !(0.0..=1.0).contains(&rec.fraction) {
            errors.push(format!("{at}: fraction {} outside [0, 1]", rec.fraction));
        }
        // Per-thread spans never overlap: phase time is bounded by the
        // workers plus the campaign driver thread all timing at once.
        let bound = rec.elapsed_s * (rec.workers.len() + 1) as f64 + CLOCK_EPS;
        if rec.phase_sum_s() > bound {
            errors.push(format!(
                "{at}: phase sum {:.6}s exceeds elapsed x (workers + 1) = {:.6}s",
                rec.phase_sum_s(),
                bound,
            ));
        }
        for (name, g) in &rec.memory {
            if g.high < g.current {
                errors.push(format!(
                    "{at}: gauge {name} high-water {} below current {}",
                    g.high, g.current
                ));
            }
        }
        for w in &rec.workers {
            if w.done > w.claimed {
                errors.push(format!(
                    "{at}: worker {} finished {} items but only claimed {}",
                    w.id, w.done, w.claimed
                ));
            }
        }
    }

    let finals = records.iter().filter(|r| r.is_final).count();
    if finals != 1 {
        errors.push(format!("expected exactly one final record, found {finals}"));
    } else if !records.last().is_some_and(|r| r.is_final) {
        errors.push("final record is not the last record".to_string());
    }
    if let Some(last) = records.last().filter(|r| r.is_final) {
        if last.total > 0 && last.done != last.total {
            errors.push(format!(
                "final record incomplete: done {} of total {}",
                last.done, last.total
            ));
        }
    }

    if errors.is_empty() {
        Ok(ProgressCheck {
            records: records.len(),
            final_record: records.pop().expect("non-empty: checked above"),
        })
    } else {
        Err(errors)
    }
}

/// `12.3s`, `4m07s`, `1h02m`.
fn human_secs(s: f64) -> String {
    if s < 60.0 {
        format!("{s:.1}s")
    } else if s < 3600.0 {
        format!("{}m{:02.0}s", (s / 60.0) as u64, s % 60.0)
    } else {
        format!(
            "{}h{:02}m",
            (s / 3600.0) as u64,
            ((s % 3600.0) / 60.0) as u64
        )
    }
}

/// `950`, `8.1k`, `3.2M`.
fn human_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// `512B`, `1.5KiB`, `2.0MiB`.
fn human_bytes(v: u64) -> String {
    const KIB: f64 = 1024.0;
    let v = v as f64;
    if v >= KIB * KIB * KIB {
        format!("{:.1}GiB", v / (KIB * KIB * KIB))
    } else if v >= KIB * KIB {
        format!("{:.1}MiB", v / (KIB * KIB))
    } else if v >= KIB {
        format!("{:.1}KiB", v / KIB)
    } else {
        format!("{v:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::{GaugeSnapshot, WorkerSnapshot, PROGRESS_SCHEMA};

    /// A well-formed record at `seq` with `done` of 10 units complete.
    fn rec(seq: u64, done: u64, is_final: bool) -> ProgressRecord {
        let total = 10;
        ProgressRecord {
            schema: PROGRESS_SCHEMA.to_string(),
            campaign: "fuzz".to_string(),
            seq,
            is_final,
            resumed: false,
            elapsed_s: seq as f64,
            done,
            total,
            fraction: done as f64 / total as f64,
            eta_s: Some(0.5),
            units_per_s: 1.0,
            events: done * 100,
            events_per_s: 100.0,
            schedules: 0,
            schedules_per_s: 0.0,
            steps: 0,
            queue_depth: total - done,
            workers: vec![WorkerSnapshot {
                id: 0,
                busy: !is_final,
                claimed: done + 1,
                done,
                busy_s: seq as f64 * 0.5,
            }],
            phases: vec![("run".to_string(), seq as f64 * 0.5)],
            memory: vec![(
                "seen_entries".to_string(),
                GaugeSnapshot {
                    current: done,
                    high: done,
                },
            )],
        }
    }

    fn stream(records: &[ProgressRecord]) -> String {
        let mut text = String::new();
        for r in records {
            r.to_json().write(&mut text);
            text.push('\n');
        }
        text
    }

    #[test]
    fn valid_stream_passes() {
        let text = stream(&[rec(1, 3, false), rec(2, 7, false), rec(3, 10, true)]);
        let check = check_progress_text(&text).unwrap();
        assert_eq!(check.records, 3);
        assert!(check.final_record.is_final);
        assert_eq!(check.final_record.done, 10);
    }

    #[test]
    fn catches_regressing_counters_and_bad_seq() {
        let mut r2 = rec(1, 7, false); // same seq as r1
        r2.done = 3; // done goes backwards
        let text = stream(&[rec(1, 5, false), r2, rec(3, 10, true)]);
        let errors = check_progress_text(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("seq")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("backwards")), "{errors:?}");
    }

    #[test]
    fn catches_missing_or_misplaced_final() {
        let text = stream(&[rec(1, 5, false)]);
        let errors = check_progress_text(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("final")), "{errors:?}");

        let text = stream(&[rec(1, 10, true), rec(2, 10, false)]);
        let errors = check_progress_text(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("last")), "{errors:?}");
    }

    #[test]
    fn catches_incomplete_final_and_phase_overrun() {
        let mut last = rec(3, 9, true); // done != total
        last.phases = vec![("run".to_string(), 1e9)]; // phase sum >> elapsed
        let text = stream(&[rec(1, 5, false), last]);
        let errors = check_progress_text(&text).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("incomplete")),
            "{errors:?}"
        );
        assert!(errors.iter().any(|e| e.contains("phase sum")), "{errors:?}");
    }

    #[test]
    fn catches_gauge_high_below_current() {
        let mut last = rec(2, 10, true);
        last.memory[0].1 = GaugeSnapshot {
            current: 8,
            high: 4,
        };
        let text = stream(&[last]);
        let errors = check_progress_text(&text).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("high-water")),
            "{errors:?}"
        );
    }

    #[test]
    fn unparsable_lines_are_reported_with_numbers() {
        let errors = check_progress_text("{\"schema\": 42}\nnot json\n").unwrap_err();
        assert!(errors.iter().any(|e| e.starts_with("line 1")), "{errors:?}");
        assert!(errors.iter().any(|e| e.starts_with("line 2")), "{errors:?}");
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(check_progress_text("\n\n").is_err());
    }

    #[test]
    fn renderers_mention_the_essentials() {
        let line = ticker_line(&rec(2, 7, false));
        assert!(line.contains("fuzz"), "{line}");
        assert!(line.contains("7/10"), "{line}");
        assert!(line.contains("eta"), "{line}");

        let done = ticker_line(&rec(3, 10, true));
        assert!(done.contains("done"), "{done}");
        assert!(!done.contains("eta"), "{done}");

        let summary = final_summary(&rec(3, 10, true));
        assert!(summary.contains("10/10"), "{summary}");
        assert!(summary.contains("worker  0"), "{summary}");
        assert!(summary.contains("seen_entries"), "{summary}");
    }

    #[test]
    fn resumed_record_may_restart_the_wall_clock() {
        // Killed at seq 2, resumed: the wall clock restarts near zero
        // but seq/done/events carry on. Only the resumed flag makes
        // this stream legal.
        let mut resumed = rec(3, 8, false);
        resumed.elapsed_s = 0.2;
        resumed.workers[0].busy_s = 0.1;
        resumed.phases = vec![("run".to_string(), 0.1)];
        let mut last = rec(4, 10, true);
        last.elapsed_s = 1.0;
        resumed.resumed = true;
        let text = stream(&[rec(1, 3, false), rec(2, 7, false), resumed.clone(), last]);
        let check = check_progress_text(&text).unwrap();
        assert_eq!(check.records, 4);

        resumed.resumed = false;
        let mut last = rec(4, 10, true);
        last.elapsed_s = 1.0;
        let text = stream(&[rec(1, 3, false), rec(2, 7, false), resumed, last]);
        let errors = check_progress_text(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("elapsed_s")), "{errors:?}");
    }

    #[test]
    fn resumed_flag_round_trips_and_renders() {
        let mut r = rec(5, 7, false);
        r.resumed = true;
        let parsed = ProgressRecord::parse(&r.to_json()).unwrap();
        assert!(parsed.resumed);
        assert_eq!(parsed, r);
        assert!(ticker_line(&r).contains("(resumed)"), "{}", ticker_line(&r));

        // Fresh records neither carry the key nor render the marker.
        let fresh = rec(5, 7, false);
        let mut text = String::new();
        fresh.to_json().write(&mut text);
        assert!(!text.contains("resumed"), "{text}");
        assert!(!ticker_line(&fresh).contains("resumed"));
    }

    #[test]
    fn humanizers_pick_sane_units() {
        assert_eq!(human_secs(12.34), "12.3s");
        assert_eq!(human_secs(247.0), "4m07s");
        assert_eq!(human_secs(3720.0), "1h02m");
        assert_eq!(human_count(950.0), "950");
        assert_eq!(human_count(8_100.0), "8.1k");
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(1536), "1.5KiB");
        assert_eq!(human_bytes(2 << 20), "2.0MiB");
    }
}
