//! Observability-overhead harness.
//!
//! Measures what tracing costs — and, just as important, what it costs
//! when it is **off** — and writes `BENCH_obs.json`:
//!
//! 1. **Disabled-path single run** — the same Figure-7-style point as
//!    `bench_driver` (first SPEC profile, MESI, DerivO3), tracing off.
//!    When `BENCH_driver.json` is present (the normal case:
//!    `scripts/bench_obs.sh` runs the driver harness first), the harness
//!    asserts this time is within 2% of the driver's number — the
//!    instrumentation must stay off the hot path.
//! 2. **Traced single run** — the same point with full (uncapped)
//!    tracing into a scratch directory; reports the per-event cost.
//! 3. **Fig7 grid** — the 23 × 3 sweep, serial, tracing off and then
//!    tracing on (capped at [`GRID_TRACE_LIMIT`] events per run so the
//!    sweep cannot fill the disk; the cap is recorded in the output).
//!
//! Scratch trace files go under `target/bench_obs_traces/` and are
//! removed afterwards.

use std::path::PathBuf;
use std::time::Instant;

use sim_engine::Json;
use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{driver, ExperimentSet, RunStats, System, SystemConfig, TraceConfig};
use swiftdir_cpu::CpuModel;
use swiftdir_workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

const INSTRUCTIONS: u64 = 60_000;

/// Allowed disabled-path regression over `BENCH_driver.json`'s
/// single-run time.
const MAX_DISABLED_OVERHEAD: f64 = 1.02;

/// Per-run event cap for the traced grid sweep (bounds disk usage; the
/// traced *single* run is uncapped).
const GRID_TRACE_LIMIT: u64 = 50_000;

fn single_run(bench: SpecBenchmark, protocol: ProtocolKind, trace: TraceConfig) -> RunStats {
    let mut sys = System::with_trace(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(CpuModel::DerivO3)
            .build(),
        trace,
    );
    let pid = sys.spawn_process();
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion()
}

fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from("target/bench_obs_traces");
    std::fs::create_dir_all(&dir).expect("create trace scratch dir");
    dir
}

fn clear_scratch() {
    let _ = std::fs::remove_dir_all("target/bench_obs_traces");
}

/// Best-of-batches single-run milliseconds under `trace`.
fn time_single(batches: usize, runs: usize, trace: &TraceConfig) -> f64 {
    let bench = SpecBenchmark::ALL[0];
    let mut best_ms = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..runs {
            single_run(bench, ProtocolKind::Mesi, trace.clone());
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / runs as f64;
        best_ms = best_ms.min(ms);
        if trace.is_enabled() {
            clear_scratch();
            scratch_dir();
        }
    }
    best_ms
}

fn sweep_points() -> Vec<(SpecBenchmark, ProtocolKind)> {
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
    ];
    SpecBenchmark::ALL
        .into_iter()
        .flat_map(|b| protocols.into_iter().map(move |p| (b, p)))
        .collect()
}

/// Serial fig7 sweep under `trace`; returns wall seconds.
fn time_sweep(trace: &TraceConfig) -> f64 {
    let (_, report) = ExperimentSet::new(sweep_points())
        .threads(1)
        .run_with_report(|&(b, p)| single_run(b, p, trace.clone()));
    report.total_wall_s
}

/// The driver harness's current single-run ms, if `BENCH_driver.json`
/// exists next to the working directory.
fn driver_single_ms() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_driver.json").ok()?;
    let json = Json::parse(&text).ok()?;
    json.get("current")?.get("single_run_ms")?.as_f64()
}

/// `bench_obs --smoke <base>`: runs ONE traced fig7 point (first SPEC
/// profile, SwiftDir) writing `<base>.{jsonl,chrome.json,metrics.json}`,
/// for CI to feed into `swiftdir-report`. No timing, no assertions.
fn smoke(base: &str) {
    if let Some(dir) = std::path::Path::new(base).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create smoke output dir");
        }
    }
    let stats = single_run(
        SpecBenchmark::ALL[0],
        ProtocolKind::SwiftDir,
        TraceConfig::to_path(base),
    );
    println!(
        "smoke: traced fig7 point ({} instr, {} events) -> {base}.metrics.json",
        stats.instructions(),
        stats.hierarchy.dispatched
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--smoke") {
        let base = args.get(1).map_or("trace/fig7", String::as_str);
        smoke(base);
        return;
    }
    println!(
        "bench_obs: {} worker thread(s) available\n",
        driver::default_threads()
    );
    let bench = SpecBenchmark::ALL[0];
    for _ in 0..3 {
        single_run(bench, ProtocolKind::Mesi, TraceConfig::default()); // warm-up
    }
    let events_per_run = single_run(bench, ProtocolKind::Mesi, TraceConfig::default())
        .hierarchy
        .dispatched;

    // --- single run, tracing off vs on ---------------------------------
    let off_ms = time_single(5, 20, &TraceConfig::default());
    println!("single run, tracing off: {off_ms:.1} ms");

    let traced = TraceConfig::to_path(scratch_dir().join("single"));
    let on_ms = time_single(3, 5, &traced);
    clear_scratch();
    let single_overhead = on_ms / off_ms;
    let ns_per_event = (on_ms - off_ms) * 1e6 / events_per_run as f64;
    println!(
        "single run, tracing on : {on_ms:.1} ms ({single_overhead:.2}x, \
         {events_per_run} events/run, {ns_per_event:.0} ns/event)"
    );

    // --- fig7 grid, tracing off vs capped-on ---------------------------
    let grid_off_s = time_sweep(&TraceConfig::default());
    println!("fig7 grid, tracing off : {grid_off_s:.3} s");
    let mut grid_trace = TraceConfig::to_path(scratch_dir().join("grid"));
    grid_trace.limit = Some(GRID_TRACE_LIMIT);
    let grid_on_s = time_sweep(&grid_trace);
    clear_scratch();
    println!(
        "fig7 grid, tracing on  : {grid_on_s:.3} s \
         (capped at {GRID_TRACE_LIMIT} events/run)"
    );

    // --- disabled-path budget vs the driver harness --------------------
    let driver_ms = driver_single_ms();
    match driver_ms {
        Some(d) => {
            let ratio = off_ms / d;
            println!(
                "\ndisabled path vs BENCH_driver.json: {off_ms:.1} ms vs {d:.1} ms \
                 ({ratio:.3}x, budget {MAX_DISABLED_OVERHEAD}x)"
            );
            assert!(
                ratio <= MAX_DISABLED_OVERHEAD,
                "tracing-disabled single run regressed {ratio:.3}x over \
                 BENCH_driver.json (budget {MAX_DISABLED_OVERHEAD}x)"
            );
            println!("disabled-path budget: ok");
        }
        None => println!("\nBENCH_driver.json not found; skipping the disabled-path budget check"),
    }

    let json = Json::object([
        ("instructions_per_run", Json::Uint(INSTRUCTIONS)),
        ("events_per_run", Json::Uint(events_per_run)),
        ("grid_trace_limit", Json::Uint(GRID_TRACE_LIMIT)),
        ("max_disabled_overhead", Json::Float(MAX_DISABLED_OVERHEAD)),
        (
            "single_run",
            Json::object([
                ("off_ms", Json::Float(off_ms)),
                ("on_ms", Json::Float(on_ms)),
                ("overhead", Json::Float(single_overhead)),
                ("ns_per_event", Json::Float(ns_per_event)),
            ]),
        ),
        (
            "fig7_grid_serial",
            Json::object([
                ("off_s", Json::Float(grid_off_s)),
                ("on_s", Json::Float(grid_on_s)),
                ("overhead", Json::Float(grid_on_s / grid_off_s)),
            ]),
        ),
        (
            "driver_single_run_ms",
            driver_ms.map_or(Json::Null, Json::Float),
        ),
        (
            "disabled_path_within_budget",
            match driver_ms {
                Some(d) => Json::Bool(off_ms / d <= MAX_DISABLED_OVERHEAD),
                None => Json::Null,
            },
        ),
    ]);
    std::fs::write("BENCH_obs.json", json.to_pretty()).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");
}
