//! Observability-overhead harness.
//!
//! Measures what tracing costs — and, just as important, what it costs
//! when it is **off** — and writes `BENCH_obs.json`:
//!
//! 1. **Disabled-path single run** — the same Figure-7-style point as
//!    `bench_driver` (first SPEC profile, MESI, DerivO3), tracing off.
//!    When `BENCH_driver.json` is present (the normal case:
//!    `scripts/bench_obs.sh` runs the driver harness first), the harness
//!    asserts this time is within 2% of the driver's number — the
//!    instrumentation must stay off the hot path.
//! 2. **Traced single run** — the same point with full (uncapped)
//!    tracing into a scratch directory; reports the per-event cost.
//! 3. **Fig7 grid** — the 23 × 3 sweep, serial, tracing off and then
//!    tracing on (capped at [`GRID_TRACE_LIMIT`] events per run so the
//!    sweep cannot fill the disk; the cap is recorded in the output).
//! 4. **Campaign sampler** — the CI fuzz grid with and without a
//!    `swiftdir.progress.v1` heartbeat sampler attached; the sampler is
//!    the *other* always-on observability path and gets the same ≤2%
//!    budget as disabled tracing.
//!
//! `bench_obs --check` re-measures the cheap gates — the disabled-path
//! single run against the committed `BENCH_driver.json`, and the fuzz
//! grid with the sampler on vs off — and exits non-zero when either
//! exceeds its budget. This is the CI observability-overhead leg.
//!
//! Scratch trace and heartbeat files go under
//! `target/bench_obs_traces/` and are removed afterwards.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sim_engine::{CampaignCounters, Json, ProgressSampler};
use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{
    driver, run_fuzz_campaign, ExperimentSet, FuzzConfig, RunStats, System, SystemConfig,
    TraceConfig, FUZZ_PHASES,
};
use swiftdir_cpu::CpuModel;
use swiftdir_workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

const INSTRUCTIONS: u64 = 60_000;

/// Allowed disabled-path regression over `BENCH_driver.json`'s
/// single-run time.
const MAX_DISABLED_OVERHEAD: f64 = 1.02;

/// Allowed fuzz-grid slowdown with a campaign sampler attached
/// (heartbeats at the default 500 ms interval to a scratch file).
const MAX_SAMPLER_OVERHEAD: f64 = 1.02;

/// Per-run event cap for the traced grid sweep (bounds disk usage; the
/// traced *single* run is uncapped).
const GRID_TRACE_LIMIT: u64 = 50_000;

fn single_run(bench: SpecBenchmark, protocol: ProtocolKind, trace: TraceConfig) -> RunStats {
    let mut sys = System::with_trace(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(CpuModel::DerivO3)
            .build(),
        trace,
    );
    let pid = sys.spawn_process();
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion()
}

fn scratch_dir() -> PathBuf {
    let dir = PathBuf::from("target/bench_obs_traces");
    std::fs::create_dir_all(&dir).expect("create trace scratch dir");
    dir
}

fn clear_scratch() {
    let _ = std::fs::remove_dir_all("target/bench_obs_traces");
}

/// Best-of-batches single-run milliseconds under `trace`.
fn time_single(batches: usize, runs: usize, trace: &TraceConfig) -> f64 {
    let bench = SpecBenchmark::ALL[0];
    let mut best_ms = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..runs {
            single_run(bench, ProtocolKind::Mesi, trace.clone());
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / runs as f64;
        best_ms = best_ms.min(ms);
        if trace.is_enabled() {
            clear_scratch();
            scratch_dir();
        }
    }
    best_ms
}

fn sweep_points() -> Vec<(SpecBenchmark, ProtocolKind)> {
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
    ];
    SpecBenchmark::ALL
        .into_iter()
        .flat_map(|b| protocols.into_iter().map(move |p| (b, p)))
        .collect()
}

/// Serial fig7 sweep under `trace`; returns wall seconds.
fn time_sweep(trace: &TraceConfig) -> f64 {
    let (_, report) = ExperimentSet::new(sweep_points())
        .threads(1)
        .run_with_report(|&(b, p)| single_run(b, p, trace.clone()));
    report.total_wall_s
}

/// The CI smoke fuzz grid (mirrors `bench_driver`'s).
fn fuzz_grid() -> Vec<FuzzConfig> {
    ProtocolKind::ALL
        .into_iter()
        .flat_map(|p| {
            (0..25u64).map(move |seed| {
                let mut cfg = FuzzConfig::new(seed, p);
                cfg.ops = 150;
                cfg
            })
        })
        .collect()
}

/// Best-of-batches wall seconds for the serial fuzz grid, with or
/// without a heartbeat sampler attached (default interval, scratch
/// file sink). Asserts the campaign stays clean either way.
fn time_fuzz_grid(batches: usize, with_sampler: bool) -> f64 {
    let grid = fuzz_grid();
    let mut best = f64::INFINITY;
    for i in 0..batches {
        let sampler = if with_sampler {
            let path = scratch_dir().join(format!("heartbeats-{i}.jsonl"));
            let out = std::fs::File::create(&path).expect("create heartbeat scratch file");
            Some(Arc::new(ProgressSampler::new(
                CampaignCounters::new("fuzz", 1, &FUZZ_PHASES),
                Box::new(out),
                Duration::from_millis(500),
            )))
        } else {
            None
        };
        let start = Instant::now();
        let reports = run_fuzz_campaign(&grid, Some(1), sampler.as_ref());
        let s = start.elapsed().as_secs_f64();
        if let Some(sam) = &sampler {
            sam.finish();
        }
        assert!(
            reports.iter().all(swiftdir_core::FuzzReport::ok),
            "fuzz grid failed in the obs harness"
        );
        best = best.min(s);
    }
    if with_sampler {
        clear_scratch();
    }
    best
}

/// The driver harness's current single-run ms, if `BENCH_driver.json`
/// exists next to the working directory.
fn driver_single_ms() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_driver.json").ok()?;
    let json = Json::parse(&text).ok()?;
    json.get("current")?.get("single_run_ms")?.as_f64()
}

/// `bench_obs --smoke <base>`: runs ONE traced fig7 point (first SPEC
/// profile, SwiftDir) writing `<base>.{jsonl,chrome.json,metrics.json}`,
/// for CI to feed into `swiftdir-report`. No timing, no assertions.
fn smoke(base: &str) {
    if let Some(dir) = std::path::Path::new(base).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create smoke output dir");
        }
    }
    let stats = single_run(
        SpecBenchmark::ALL[0],
        ProtocolKind::SwiftDir,
        TraceConfig::to_path(base),
    );
    println!(
        "smoke: traced fig7 point ({} instr, {} events) -> {base}.metrics.json",
        stats.instructions(),
        stats.hierarchy.dispatched
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--smoke") {
        let base = args.get(1).map_or("trace/fig7", String::as_str);
        smoke(base);
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("--check") {
        return check_gates();
    }
    println!(
        "bench_obs: {} worker thread(s) available\n",
        driver::default_threads()
    );
    let bench = SpecBenchmark::ALL[0];
    for _ in 0..3 {
        single_run(bench, ProtocolKind::Mesi, TraceConfig::default()); // warm-up
    }
    let events_per_run = single_run(bench, ProtocolKind::Mesi, TraceConfig::default())
        .hierarchy
        .dispatched;

    // --- single run, tracing off vs on ---------------------------------
    let off_ms = time_single(5, 20, &TraceConfig::default());
    println!("single run, tracing off: {off_ms:.1} ms");

    let traced = TraceConfig::to_path(scratch_dir().join("single"));
    let on_ms = time_single(3, 5, &traced);
    clear_scratch();
    let single_overhead = on_ms / off_ms;
    let ns_per_event = (on_ms - off_ms) * 1e6 / events_per_run as f64;
    println!(
        "single run, tracing on : {on_ms:.1} ms ({single_overhead:.2}x, \
         {events_per_run} events/run, {ns_per_event:.0} ns/event)"
    );

    // --- fig7 grid, tracing off vs capped-on ---------------------------
    let grid_off_s = time_sweep(&TraceConfig::default());
    println!("fig7 grid, tracing off : {grid_off_s:.3} s");
    let mut grid_trace = TraceConfig::to_path(scratch_dir().join("grid"));
    grid_trace.limit = Some(GRID_TRACE_LIMIT);
    let grid_on_s = time_sweep(&grid_trace);
    clear_scratch();
    println!(
        "fig7 grid, tracing on  : {grid_on_s:.3} s \
         (capped at {GRID_TRACE_LIMIT} events/run)"
    );

    // --- fuzz grid, sampler off vs on ----------------------------------
    let sampler_off_s = time_fuzz_grid(3, false);
    let sampler_on_s = time_fuzz_grid(3, true);
    let sampler_overhead = sampler_on_s / sampler_off_s;
    println!(
        "fuzz grid, sampler off : {sampler_off_s:.3} s\n\
         fuzz grid, sampler on  : {sampler_on_s:.3} s ({sampler_overhead:.3}x, \
         budget {MAX_SAMPLER_OVERHEAD}x)"
    );

    // --- disabled-path budget vs the driver harness --------------------
    let driver_ms = driver_single_ms();
    match driver_ms {
        Some(d) => {
            let ratio = off_ms / d;
            println!(
                "\ndisabled path vs BENCH_driver.json: {off_ms:.1} ms vs {d:.1} ms \
                 ({ratio:.3}x, budget {MAX_DISABLED_OVERHEAD}x)"
            );
            assert!(
                ratio <= MAX_DISABLED_OVERHEAD,
                "tracing-disabled single run regressed {ratio:.3}x over \
                 BENCH_driver.json (budget {MAX_DISABLED_OVERHEAD}x)"
            );
            println!("disabled-path budget: ok");
        }
        None => println!("\nBENCH_driver.json not found; skipping the disabled-path budget check"),
    }

    let json = Json::object([
        ("instructions_per_run", Json::Uint(INSTRUCTIONS)),
        ("events_per_run", Json::Uint(events_per_run)),
        ("grid_trace_limit", Json::Uint(GRID_TRACE_LIMIT)),
        ("max_disabled_overhead", Json::Float(MAX_DISABLED_OVERHEAD)),
        (
            "single_run",
            Json::object([
                ("off_ms", Json::Float(off_ms)),
                ("on_ms", Json::Float(on_ms)),
                ("overhead", Json::Float(single_overhead)),
                ("ns_per_event", Json::Float(ns_per_event)),
            ]),
        ),
        (
            "fig7_grid_serial",
            Json::object([
                ("off_s", Json::Float(grid_off_s)),
                ("on_s", Json::Float(grid_on_s)),
                ("overhead", Json::Float(grid_on_s / grid_off_s)),
            ]),
        ),
        (
            "sampler_fuzz_grid",
            Json::object([
                ("off_s", Json::Float(sampler_off_s)),
                ("on_s", Json::Float(sampler_on_s)),
                ("overhead", Json::Float(sampler_overhead)),
                ("max_overhead", Json::Float(MAX_SAMPLER_OVERHEAD)),
            ]),
        ),
        (
            "driver_single_run_ms",
            driver_ms.map_or(Json::Null, Json::Float),
        ),
        (
            "disabled_path_within_budget",
            match driver_ms {
                Some(d) => Json::Bool(off_ms / d <= MAX_DISABLED_OVERHEAD),
                None => Json::Null,
            },
        ),
    ]);
    std::fs::write("BENCH_obs.json", json.to_pretty()).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");
    ExitCode::SUCCESS
}

/// `--check`: the CI observability-overhead gates. Re-measures the
/// cheap figures — the tracing-disabled single run against the
/// committed `BENCH_driver.json` (when present), and the fuzz grid
/// with a heartbeat sampler on vs off — and fails on a budget breach.
fn check_gates() -> ExitCode {
    let bench = SpecBenchmark::ALL[0];
    for _ in 0..3 {
        single_run(bench, ProtocolKind::Mesi, TraceConfig::default()); // warm-up
    }

    let mut ok = true;
    match driver_single_ms() {
        Some(d) => {
            let off_ms = time_single(3, 10, &TraceConfig::default());
            let ratio = off_ms / d;
            println!(
                "bench_obs --check: disabled path {off_ms:.1} ms vs BENCH_driver.json \
                 {d:.1} ms ({ratio:.3}x, budget {MAX_DISABLED_OVERHEAD}x)"
            );
            if ratio > MAX_DISABLED_OVERHEAD {
                eprintln!(
                    "bench_obs --check: FAIL — tracing-disabled single run regressed \
                     {ratio:.3}x over BENCH_driver.json (budget {MAX_DISABLED_OVERHEAD}x)"
                );
                ok = false;
            }
        }
        None => println!(
            "bench_obs --check: BENCH_driver.json not found; skipping the disabled-path gate"
        ),
    }

    // Warm-up plus best-of-5 on both sides: the grid only takes ~0.1 s,
    // so single-shot timings carry several percent of scheduler noise —
    // more than the margin this gate polices.
    time_fuzz_grid(1, false);
    let off_s = time_fuzz_grid(5, false);
    let on_s = time_fuzz_grid(5, true);
    let overhead = on_s / off_s;
    println!(
        "bench_obs --check: fuzz grid sampler off {off_s:.3} s, on {on_s:.3} s \
         ({overhead:.3}x, budget {MAX_SAMPLER_OVERHEAD}x)"
    );
    if overhead > MAX_SAMPLER_OVERHEAD {
        eprintln!(
            "bench_obs --check: FAIL — campaign sampler costs {overhead:.3}x on the \
             fuzz grid (budget {MAX_SAMPLER_OVERHEAD}x)"
        );
        ok = false;
    }

    if ok {
        println!("bench_obs --check: ok");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
