//! Performance harness for the simulator itself.
//!
//! Measures four things and writes them to `BENCH_driver.json` in the
//! current directory:
//!
//! 1. **Single-simulation throughput** — wall time of one Figure-7-style
//!    run (first SPEC profile, MESI, DerivO3, 60 k instructions), the
//!    number the hot-path work (calendar event queue, slab-allocated
//!    transaction state, geometry shift/mask, TLB index) moves.
//! 2. **Sweep wall-clock** — the full 23 × 3 Figure-7 grid through
//!    [`ExperimentSet`], serial (`threads(1)`) vs parallel, the number
//!    the experiment driver moves. Per-point results must be identical
//!    between the two runs; the harness asserts it.
//! 3. **Fuzz throughput** — the CI smoke grid (4 protocols × 25 seeds)
//!    serial vs parallel, asserting the per-seed digests and statistics
//!    are bit-identical across thread counts.
//! 4. **Explorer throughput** — coverage-gate-shaped explorations via
//!    `explore_parallel`, serial vs parallel, asserting the merged
//!    reports are bit-identical across thread counts.
//! 5. **Many-core scale-out** — a 64-core machine with the directory
//!    sharded into 8 address-interleaved banks, ticked serially vs with
//!    the in-simulation parallel stepper (`run_until_idle_parallel`),
//!    asserting completions, statistics, and the state digest are
//!    bit-identical, and recording events/s plus the parallel-vs-serial
//!    speedup.
//!
//! The parallel legs use `SWIFTDIR_THREADS` when set, else the host's
//! `std::thread::available_parallelism()`; the host core count is
//! recorded under `"host_cores"` so committed numbers carry their
//! hardware context (the CI gates pin `SWIFTDIR_THREADS=4`).
//!
//! `bench_driver --check` instead re-measures the single-run figure and
//! compares it against the committed `BENCH_driver.json`, failing on a
//! >10% regression — the CI bench smoke step.
//!
//! `bench_driver --progress FILE|-` (or `SWIFTDIR_PROGRESS`) streams
//! `swiftdir.progress.v1` heartbeats for the parallel legs — the
//! Figure-7 sweep, the fuzz grid, and the explorer workload — so a
//! long bench run can be followed with `swiftdir-report --follow`.
//!
//! Reference numbers from the commit that introduced this harness are
//! embedded under `"baseline"` so a regression shows up as a ratio
//! without digging through git history. They were measured on a 1-core
//! container; re-baseline when moving to different hardware.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use sim_engine::{CampaignCounters, Cycle, Json, ProgressSampler};
use swiftdir_coherence::{CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind};
use swiftdir_core::{
    driver, explore_campaign, explore_parallel_threads, run_fuzz_campaign, run_fuzz_many_threads,
    DriverReport, ExperimentSet, ExploreConfig, ExploreMode, FuzzConfig, ProgressConfig, RunStats,
    System, SystemConfig, EXPLORE_PHASES, FUZZ_PHASES,
};
use swiftdir_cpu::CpuModel;
use swiftdir_mmu::PhysAddr;
use swiftdir_workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

const INSTRUCTIONS: u64 = 60_000;

/// Pre-optimization numbers measured on the reference container (1 CPU):
/// ms per single run (best of 5 × 40-run averages) and seconds for the
/// serial 69-point sweep.
const BASELINE_SINGLE_MS: f64 = 45.1;
const BASELINE_SWEEP_SERIAL_S: f64 = 6.571;

/// `--check` fails when the fresh single-run time exceeds the committed
/// one by more than this factor.
const CHECK_TOLERANCE: f64 = 1.10;

fn single_run(bench: SpecBenchmark, protocol: ProtocolKind) -> RunStats {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(CpuModel::DerivO3)
            .build(),
    );
    let pid = sys.spawn_process();
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion()
}

fn sweep_points() -> Vec<(SpecBenchmark, ProtocolKind)> {
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
    ];
    SpecBenchmark::ALL
        .into_iter()
        .flat_map(|b| protocols.into_iter().map(move |p| (b, p)))
        .collect()
}

fn time_sweep(
    threads: usize,
    progress: Option<&Arc<ProgressSampler>>,
) -> (DriverReport, Vec<RunStats>) {
    let points = sweep_points();
    if let Some(p) = progress {
        p.counters().add_total(points.len() as u64);
    }
    let mut set = ExperimentSet::new(points).threads(threads);
    if let Some(p) = progress {
        set = set.progress(Arc::clone(p));
    }
    let progress = progress.map(Arc::as_ref);
    let (stats, report) = set.run_with_report(move |&(b, p)| {
        let stats = single_run(b, p);
        if let Some(p) = progress {
            p.counters().add_done(1);
        }
        stats
    });
    (report, stats)
}

/// Best-of-batches single-run milliseconds.
fn measure_single_run(batches: usize, runs_per_batch: usize) -> f64 {
    let bench = SpecBenchmark::ALL[0];
    for _ in 0..3 {
        single_run(bench, ProtocolKind::Mesi); // warm-up
    }
    let mut best_ms = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..runs_per_batch {
            single_run(bench, ProtocolKind::Mesi);
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / runs_per_batch as f64;
        best_ms = best_ms.min(ms);
    }
    best_ms
}

/// Worker count for the parallel legs: `SWIFTDIR_THREADS` when set,
/// else the host's available parallelism. The determinism assertions
/// are the point on small hosts; the wall-clock gain is the bonus on
/// real multi-core ones.
fn parallel_threads() -> usize {
    driver::default_threads()
}

/// The host's physical parallelism, independent of `SWIFTDIR_THREADS` —
/// recorded in the report so committed numbers carry their context.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The CI smoke fuzz grid: every protocol × 25 seeds × 150 ops.
fn fuzz_grid() -> Vec<FuzzConfig> {
    ProtocolKind::ALL
        .into_iter()
        .flat_map(|p| {
            (0..25u64).map(move |seed| {
                let mut cfg = FuzzConfig::new(seed, p);
                cfg.ops = 150;
                cfg
            })
        })
        .collect()
}

/// The scale-out leg's machine: 64 cores over 8 directory banks.
const SCALE_CORES: usize = 64;
const SCALE_BANKS: usize = 8;
const SCALE_ROUNDS: u64 = 1000;

/// A contended 64-core workload spanning every directory bank:
/// bank-strided blocks with cross-core sharing and a store/WP-load mix.
fn scale_drive(h: &mut Hierarchy) {
    let mut t = Cycle(0);
    let stride = h.config().bank_geometry().size_bytes() / 8;
    for round in 0..SCALE_ROUNDS {
        for core in 0..SCALE_CORES {
            let addr = PhysAddr(0x10_0000 + (round % 64) * stride + (core as u64 % 4) * 64);
            let req = match (round + core as u64) % 4 {
                0 => CoreRequest::store(addr),
                1 => CoreRequest::load(addr).write_protected(),
                _ => CoreRequest::load(addr),
            };
            h.issue(t, core, req);
            t += Cycle(3);
        }
    }
}

fn scale_hierarchy() -> Hierarchy {
    Hierarchy::new(
        HierarchyConfig::table_v(SCALE_CORES, ProtocolKind::SwiftDir).with_banks(SCALE_BANKS),
    )
}

/// Runs the 64-core/8-bank leg serially and with the in-simulation
/// parallel stepper; asserts bit-identity and returns
/// `(serial_s, parallel_s, events)`.
fn measure_scale(threads: usize) -> (f64, f64, u64) {
    let mut serial = scale_hierarchy();
    scale_drive(&mut serial);
    let start = Instant::now();
    let done_serial = serial.run_until_idle();
    let serial_s = start.elapsed().as_secs_f64();

    let mut parallel = scale_hierarchy();
    scale_drive(&mut parallel);
    let start = Instant::now();
    let done_parallel = parallel.run_until_idle_parallel(threads);
    let parallel_s = start.elapsed().as_secs_f64();

    assert_eq!(
        done_serial, done_parallel,
        "scale leg: parallel tick changed completions"
    );
    assert_eq!(
        serial.stats(),
        parallel.stats(),
        "scale leg: parallel tick changed statistics"
    );
    assert_eq!(
        serial.state_digest(),
        parallel.state_digest(),
        "scale leg: parallel tick changed the state digest"
    );
    (serial_s, parallel_s, serial.stats().dispatched)
}

/// Coverage-gate-shaped exploration workload: per protocol, the four
/// contended streams the `--coverage` gate walks.
fn explore_workload() -> Vec<(ProtocolKind, Vec<swiftdir_core::AccessOp>)> {
    ProtocolKind::ALL
        .into_iter()
        .flat_map(|p| {
            (0..4u64).map(move |seed| (p, swiftdir_core::contended_stream(seed, 2, 2, 5, 0.3)))
        })
        .collect()
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check_committed();
    }

    let mut pcfg = ProgressConfig::from_env();
    let mut cli = std::env::args().skip(1);
    while let Some(flag) = cli.next() {
        if flag == "--progress" {
            match cli.next() {
                Some(v) => pcfg.sink = ProgressConfig::parse_sink(&v),
                None => {
                    eprintln!("bench_driver: --progress expects a value (FILE or -)");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    // One campaign spans all parallel legs; both campaigns' phase names
    // are declared (a span for an undeclared name is a no-op).
    let all_phases: Vec<&'static str> = FUZZ_PHASES
        .iter()
        .chain(EXPLORE_PHASES.iter())
        .copied()
        .collect();
    let sampler = match pcfg.build(CampaignCounters::new(
        "bench",
        parallel_threads(),
        &all_phases,
    )) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_driver: cannot open progress sink: {e}");
            return ExitCode::FAILURE;
        }
    };

    let threads = parallel_threads();
    println!(
        "bench_driver: host has {} core(s), parallel legs use {threads} thread(s)\n",
        host_cores()
    );

    // --- single-simulation throughput: best of `reps` batches ----------
    let bench = SpecBenchmark::ALL[0];
    // One run's dispatched-event count (deterministic across repeats)
    // gives the event-throughput denominator.
    let events_per_run = single_run(bench, ProtocolKind::Mesi).hierarchy.dispatched;
    let best_ms = measure_single_run(5, 20);
    let events_per_sec = events_per_run as f64 / (best_ms / 1000.0);
    println!(
        "single run ({} x {INSTRUCTIONS} instr): {best_ms:.1} ms/run \
         (baseline {BASELINE_SINGLE_MS} ms, ratio {:.2}x)",
        bench.name(),
        BASELINE_SINGLE_MS / best_ms,
    );
    println!(
        "event throughput: {events_per_run} events/run, {:.0} k events/s",
        events_per_sec / 1000.0
    );

    // --- sweep: serial vs parallel -------------------------------------
    let (serial_report, serial_stats) = time_sweep(1, None);
    let serial_s = serial_report.total_wall_s;
    println!("fig7 sweep, serial   (69 runs): {serial_s:.3} s");
    let (parallel_report, parallel_stats) = time_sweep(threads, sampler.as_ref());
    let parallel_s = parallel_report.total_wall_s;
    println!("fig7 sweep, {threads:>2} thread(s)        : {parallel_s:.3} s");
    assert_eq!(
        serial_stats, parallel_stats,
        "serial and parallel sweeps must produce identical per-run stats"
    );
    println!("per-run stats identical across schedules: ok");
    let speedup = serial_s / parallel_s;
    println!(
        "sweep speedup {speedup:.2}x on {threads} thread(s) \
         (baseline serial {BASELINE_SWEEP_SERIAL_S} s)"
    );
    if let Some(slow) = serial_report.slowest() {
        let (b, p) = sweep_points()[slow.index];
        println!(
            "slowest point: {} / {p:?} at {:.1} ms",
            b.name(),
            slow.wall_s * 1000.0
        );
    }

    // --- fuzz fan-out: serial vs parallel, digests must agree ----------
    let grid = fuzz_grid();
    let start = Instant::now();
    let fuzz_serial = run_fuzz_many_threads(&grid, 1);
    let fuzz_serial_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let fuzz_parallel = run_fuzz_campaign(&grid, Some(threads), sampler.as_ref());
    let fuzz_parallel_s = start.elapsed().as_secs_f64();
    for (a, b) in fuzz_serial.iter().zip(&fuzz_parallel) {
        assert!(a.ok(), "fuzz {:?} failed in the bench harness", a.config);
        assert_eq!(
            (a.digest, a.events, &a.stats),
            (b.digest, b.events, &b.stats),
            "fuzz fan-out diverged across thread counts for {:?}",
            a.config
        );
    }
    let fuzz_seeds_per_s = grid.len() as f64 / fuzz_parallel_s;
    println!(
        "\nfuzz grid ({} seeds): serial {fuzz_serial_s:.3} s, {threads} thread(s) \
         {fuzz_parallel_s:.3} s ({:.2}x), {fuzz_seeds_per_s:.1} seeds/s; digests identical: ok",
        grid.len(),
        fuzz_serial_s / fuzz_parallel_s
    );

    // --- explorer fan-out: serial vs parallel, reports must agree ------
    let workload = explore_workload();
    let ecfg = ExploreConfig::default();
    let mut explore_schedules = 0u64;
    let start = Instant::now();
    let explore_serial: Vec<_> = workload
        .iter()
        .map(|(p, stream)| {
            explore_parallel_threads(&swiftdir_core::diff::tiny_config(2, *p), stream, &ecfg, 1)
        })
        .collect();
    let explore_serial_s = start.elapsed().as_secs_f64();
    if let Some(p) = sampler.as_ref() {
        p.counters().add_total(workload.len() as u64);
    }
    let start = Instant::now();
    let explore_parallel: Vec<_> = workload
        .iter()
        .map(|(p, stream)| {
            let (report, _profile) = explore_campaign(
                &swiftdir_core::diff::tiny_config(2, *p),
                stream,
                &ecfg,
                threads,
                sampler.as_ref(),
            );
            if let Some(s) = sampler.as_ref() {
                s.counters().add_done(1);
                s.tick();
            }
            report
        })
        .collect();
    let explore_parallel_s = start.elapsed().as_secs_f64();
    for (a, b) in explore_serial.iter().zip(&explore_parallel) {
        assert!(a.error.is_none(), "exploration failed: {:?}", a.error);
        assert_eq!(a, b, "explorer fan-out diverged across thread counts");
        explore_schedules += a.schedules;
    }
    let explore_schedules_per_s = explore_schedules as f64 / explore_parallel_s;
    println!(
        "explore workload ({} trees, {explore_schedules} schedules): serial \
         {explore_serial_s:.3} s, {threads} thread(s) {explore_parallel_s:.3} s ({:.2}x), \
         {explore_schedules_per_s:.0} schedules/s; reports identical: ok",
        workload.len(),
        explore_serial_s / explore_parallel_s
    );

    // --- many-core scale-out: sharded banks, serial vs parallel tick ----
    let (scale_serial_s, scale_parallel_s, scale_events) = measure_scale(threads);
    let scale_events_per_sec = scale_events as f64 / scale_serial_s;
    let scale_speedup = scale_serial_s / scale_parallel_s;
    println!(
        "scale-out ({SCALE_CORES} cores / {SCALE_BANKS} banks, {scale_events} events): \
         serial {scale_serial_s:.3} s ({:.0} k events/s), {threads} tick thread(s) \
         {scale_parallel_s:.3} s ({scale_speedup:.2}x); digest/stats/completions identical: ok",
        scale_events_per_sec / 1000.0
    );

    // --- undo vs fork walker: differential oracle + speedup -------------
    let fork_ecfg = ExploreConfig {
        mode: ExploreMode::Fork,
        ..ecfg
    };
    let start = Instant::now();
    let explore_fork: Vec<_> = workload
        .iter()
        .map(|(p, stream)| {
            explore_parallel_threads(
                &swiftdir_core::diff::tiny_config(2, *p),
                stream,
                &fork_ecfg,
                1,
            )
        })
        .collect();
    let explore_fork_s = start.elapsed().as_secs_f64();
    for (a, b) in explore_serial.iter().zip(&explore_fork) {
        assert_eq!(a, b, "undo and fork walkers diverged");
    }
    let undo_vs_fork_speedup = explore_fork_s / explore_serial_s;
    println!(
        "fork-walker oracle: {explore_fork_s:.3} s serial — undo walker is \
         {undo_vs_fork_speedup:.2}x faster; reports bit-identical: ok"
    );

    // --- report ---------------------------------------------------------
    let json = Json::object([
        ("instructions_per_run", Json::Uint(INSTRUCTIONS)),
        ("host_cores", Json::Uint(host_cores() as u64)),
        (
            "baseline",
            Json::object([
                ("single_run_ms", Json::Float(BASELINE_SINGLE_MS)),
                ("sweep_serial_s", Json::Float(BASELINE_SWEEP_SERIAL_S)),
            ]),
        ),
        (
            "current",
            Json::object([
                ("single_run_ms", Json::Float(best_ms)),
                (
                    "single_run_speedup",
                    Json::Float(BASELINE_SINGLE_MS / best_ms),
                ),
                ("events_per_run", Json::Uint(events_per_run)),
                ("events_per_sec", Json::Float(events_per_sec)),
                ("sweep_serial_s", Json::Float(serial_s)),
                ("sweep_parallel_s", Json::Float(parallel_s)),
                ("sweep_threads", Json::Uint(threads as u64)),
                ("sweep_speedup", Json::Float(speedup)),
                ("serial_parallel_stats_identical", Json::Bool(true)),
            ]),
        ),
        (
            "fuzz",
            Json::object([
                ("seeds", Json::Uint(grid.len() as u64)),
                ("serial_s", Json::Float(fuzz_serial_s)),
                ("parallel_s", Json::Float(fuzz_parallel_s)),
                ("threads", Json::Uint(threads as u64)),
                ("speedup", Json::Float(fuzz_serial_s / fuzz_parallel_s)),
                ("seeds_per_s", Json::Float(fuzz_seeds_per_s)),
                ("digests_identical", Json::Bool(true)),
            ]),
        ),
        (
            "explore",
            Json::object([
                ("trees", Json::Uint(workload.len() as u64)),
                ("schedules", Json::Uint(explore_schedules)),
                ("serial_s", Json::Float(explore_serial_s)),
                ("parallel_s", Json::Float(explore_parallel_s)),
                ("threads", Json::Uint(threads as u64)),
                (
                    "speedup",
                    Json::Float(explore_serial_s / explore_parallel_s),
                ),
                ("schedules_per_s", Json::Float(explore_schedules_per_s)),
                ("fork_serial_s", Json::Float(explore_fork_s)),
                ("undo_vs_fork_speedup", Json::Float(undo_vs_fork_speedup)),
                ("reports_identical", Json::Bool(true)),
            ]),
        ),
        (
            "scale",
            Json::object([
                ("cores", Json::Uint(SCALE_CORES as u64)),
                ("banks", Json::Uint(SCALE_BANKS as u64)),
                ("events", Json::Uint(scale_events)),
                ("serial_s", Json::Float(scale_serial_s)),
                ("parallel_s", Json::Float(scale_parallel_s)),
                ("tick_threads", Json::Uint(threads as u64)),
                ("events_per_sec", Json::Float(scale_events_per_sec)),
                ("speedup", Json::Float(scale_speedup)),
                ("parallel_identical", Json::Bool(true)),
            ]),
        ),
        ("sweep_serial", serial_report.to_json()),
        ("sweep_parallel", parallel_report.to_json()),
    ]);
    std::fs::write("BENCH_driver.json", json.to_pretty()).expect("write BENCH_driver.json");
    println!("\nwrote BENCH_driver.json");
    if let Some(s) = &sampler {
        s.finish();
    }
    ExitCode::SUCCESS
}

/// `--check`: quick measurements against the committed
/// `BENCH_driver.json`; fails on a >10% regression of either the
/// single-run time or the explorer's schedule throughput. The CI bench
/// smoke.
fn check_committed() -> ExitCode {
    let text = match std::fs::read_to_string("BENCH_driver.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_driver --check: cannot read BENCH_driver.json: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_driver --check: BENCH_driver.json: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(committed_ms) = committed
        .get("current")
        .and_then(|c| c.get("single_run_ms"))
        .and_then(Json::as_f64)
    else {
        eprintln!("bench_driver --check: no current.single_run_ms in BENCH_driver.json");
        return ExitCode::FAILURE;
    };

    let measured_ms = measure_single_run(3, 10);
    let limit = committed_ms * CHECK_TOLERANCE;
    println!(
        "bench_driver --check: measured {measured_ms:.1} ms/run vs committed \
         {committed_ms:.1} ms (limit {limit:.1} ms)"
    );
    if measured_ms > limit {
        eprintln!(
            "bench_driver --check: FAIL — single_run_ms regressed >{:.0}% \
             (measured {measured_ms:.1} ms > {limit:.1} ms); rerun scripts/bench_driver.sh \
             and commit the refreshed BENCH_driver.json if intentional",
            (CHECK_TOLERANCE - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }

    // Explorer throughput gate: re-walk the bench workload and compare
    // schedules/s against the committed figure.
    let Some(committed_sched_s) = committed
        .get("explore")
        .and_then(|c| c.get("schedules_per_s"))
        .and_then(Json::as_f64)
    else {
        eprintln!("bench_driver --check: no explore.schedules_per_s in BENCH_driver.json");
        return ExitCode::FAILURE;
    };
    let threads = parallel_threads();
    let ecfg = ExploreConfig::default();
    let mut schedules = 0u64;
    let start = Instant::now();
    for (p, stream) in explore_workload() {
        let r = explore_parallel_threads(
            &swiftdir_core::diff::tiny_config(2, p),
            &stream,
            &ecfg,
            threads,
        );
        assert!(r.error.is_none(), "exploration failed: {:?}", r.error);
        schedules += r.schedules;
    }
    let measured_sched_s = schedules as f64 / start.elapsed().as_secs_f64();
    let floor = committed_sched_s / CHECK_TOLERANCE;
    println!(
        "bench_driver --check: measured {measured_sched_s:.0} schedules/s vs committed \
         {committed_sched_s:.0} (floor {floor:.0})"
    );
    if measured_sched_s < floor {
        eprintln!(
            "bench_driver --check: FAIL — explore.schedules_per_s regressed >{:.0}% \
             (measured {measured_sched_s:.0} < {floor:.0}); rerun scripts/bench_driver.sh \
             and commit the refreshed BENCH_driver.json if intentional",
            (CHECK_TOLERANCE - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }

    // Scale-out gate: the 64-core/8-bank leg must stay bit-identical
    // between serial and parallel ticking (measure_scale asserts it) and
    // keep its serial event throughput within tolerance.
    let Some(committed_eps) = committed
        .get("scale")
        .and_then(|c| c.get("events_per_sec"))
        .and_then(Json::as_f64)
    else {
        eprintln!("bench_driver --check: no scale.events_per_sec in BENCH_driver.json");
        return ExitCode::FAILURE;
    };
    let (scale_serial_s, scale_parallel_s, scale_events) = measure_scale(threads);
    let measured_eps = scale_events as f64 / scale_serial_s;
    let eps_floor = committed_eps / CHECK_TOLERANCE;
    println!(
        "bench_driver --check: scale-out {measured_eps:.0} events/s vs committed \
         {committed_eps:.0} (floor {eps_floor:.0}); parallel tick identical \
         ({:.2}x on {threads} thread(s))",
        scale_serial_s / scale_parallel_s
    );
    if measured_eps < eps_floor {
        eprintln!(
            "bench_driver --check: FAIL — scale.events_per_sec regressed >{:.0}% \
             (measured {measured_eps:.0} < {eps_floor:.0}); rerun scripts/bench_driver.sh \
             and commit the refreshed BENCH_driver.json if intentional",
            (CHECK_TOLERANCE - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_driver --check: ok");
    ExitCode::SUCCESS
}
