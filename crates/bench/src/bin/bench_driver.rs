//! Performance harness for the simulator itself.
//!
//! Measures two things and writes them to `BENCH_driver.json` in the
//! current directory:
//!
//! 1. **Single-simulation throughput** — wall time of one Figure-7-style
//!    run (first SPEC profile, MESI, DerivO3, 60 k instructions), the
//!    number the hot-path work (FxHash maps, `pop_batch`, geometry
//!    shift/mask, TLB index) moves.
//! 2. **Sweep wall-clock** — the full 23 × 3 Figure-7 grid through
//!    [`ExperimentSet`], serial (`threads(1)`) vs parallel (host
//!    default), the number the experiment driver moves. Per-point
//!    results must be identical between the two runs; the harness
//!    asserts it.
//!
//! Reference numbers from the commit that introduced this harness are
//! embedded under `"baseline"` so a regression shows up as a ratio
//! without digging through git history. They were measured on a 1-core
//! container; re-baseline when moving to different hardware.

use std::time::Instant;

use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{driver, ExperimentSet, RunStats, System, SystemConfig};
use swiftdir_cpu::CpuModel;
use swiftdir_workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

const INSTRUCTIONS: u64 = 60_000;

/// Pre-optimization numbers measured on the reference container (1 CPU):
/// ms per single run (best of 5 × 40-run averages) and seconds for the
/// serial 69-point sweep.
const BASELINE_SINGLE_MS: f64 = 45.1;
const BASELINE_SWEEP_SERIAL_S: f64 = 6.571;

fn single_run(bench: SpecBenchmark, protocol: ProtocolKind) -> RunStats {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(CpuModel::DerivO3)
            .build(),
    );
    let pid = sys.spawn_process();
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion()
}

fn sweep_points() -> Vec<(SpecBenchmark, ProtocolKind)> {
    let protocols = [ProtocolKind::Mesi, ProtocolKind::SwiftDir, ProtocolKind::SMesi];
    SpecBenchmark::ALL
        .into_iter()
        .flat_map(|b| protocols.into_iter().map(move |p| (b, p)))
        .collect()
}

fn time_sweep(threads: usize) -> (f64, Vec<RunStats>) {
    let start = Instant::now();
    let stats = ExperimentSet::new(sweep_points())
        .threads(threads)
        .run(|&(b, p)| single_run(b, p));
    (start.elapsed().as_secs_f64(), stats)
}

fn main() {
    let threads = driver::default_threads();
    println!("bench_driver: {threads} worker thread(s) available\n");

    // --- single-simulation throughput: best of `reps` batches ----------
    let bench = SpecBenchmark::ALL[0];
    let (batches, runs_per_batch) = (5, 20);
    for _ in 0..3 {
        single_run(bench, ProtocolKind::Mesi); // warm-up
    }
    let mut best_ms = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..runs_per_batch {
            single_run(bench, ProtocolKind::Mesi);
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / runs_per_batch as f64;
        best_ms = best_ms.min(ms);
    }
    println!(
        "single run ({} x {INSTRUCTIONS} instr): {best_ms:.1} ms/run \
         (baseline {BASELINE_SINGLE_MS} ms, ratio {:.2}x)",
        bench.name(),
        BASELINE_SINGLE_MS / best_ms,
    );

    // --- sweep: serial vs parallel -------------------------------------
    let (serial_s, serial_stats) = time_sweep(1);
    println!("fig7 sweep, serial   (69 runs): {serial_s:.3} s");
    let (parallel_s, parallel_stats) = time_sweep(threads);
    println!("fig7 sweep, {threads:>2} thread(s)        : {parallel_s:.3} s");
    assert_eq!(
        serial_stats, parallel_stats,
        "serial and parallel sweeps must produce identical per-run stats"
    );
    println!("per-run stats identical across schedules: ok");
    let speedup = serial_s / parallel_s;
    println!(
        "sweep speedup {speedup:.2}x on {threads} thread(s) \
         (baseline serial {BASELINE_SWEEP_SERIAL_S} s)"
    );

    // --- report ---------------------------------------------------------
    let json = format!(
        "{{\n  \"instructions_per_run\": {INSTRUCTIONS},\n  \
         \"baseline\": {{\n    \"single_run_ms\": {BASELINE_SINGLE_MS},\n    \
         \"sweep_serial_s\": {BASELINE_SWEEP_SERIAL_S}\n  }},\n  \
         \"current\": {{\n    \"single_run_ms\": {best_ms:.2},\n    \
         \"single_run_speedup\": {:.3},\n    \
         \"sweep_serial_s\": {serial_s:.3},\n    \
         \"sweep_parallel_s\": {parallel_s:.3},\n    \
         \"sweep_threads\": {threads},\n    \
         \"sweep_speedup\": {speedup:.3},\n    \
         \"serial_parallel_stats_identical\": true\n  }}\n}}\n",
        BASELINE_SINGLE_MS / best_ms,
    );
    std::fs::write("BENCH_driver.json", &json).expect("write BENCH_driver.json");
    println!("\nwrote BENCH_driver.json");
}
