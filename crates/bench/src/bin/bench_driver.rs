//! Performance harness for the simulator itself.
//!
//! Measures two things and writes them to `BENCH_driver.json` in the
//! current directory:
//!
//! 1. **Single-simulation throughput** — wall time of one Figure-7-style
//!    run (first SPEC profile, MESI, DerivO3, 60 k instructions), the
//!    number the hot-path work (FxHash maps, `pop_batch`, geometry
//!    shift/mask, TLB index) moves.
//! 2. **Sweep wall-clock** — the full 23 × 3 Figure-7 grid through
//!    [`ExperimentSet`], serial (`threads(1)`) vs parallel (host
//!    default), the number the experiment driver moves. Per-point
//!    results must be identical between the two runs; the harness
//!    asserts it.
//!
//! Reference numbers from the commit that introduced this harness are
//! embedded under `"baseline"` so a regression shows up as a ratio
//! without digging through git history. They were measured on a 1-core
//! container; re-baseline when moving to different hardware.

use std::time::Instant;

use sim_engine::Json;
use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{driver, DriverReport, ExperimentSet, RunStats, System, SystemConfig};
use swiftdir_cpu::CpuModel;
use swiftdir_workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

const INSTRUCTIONS: u64 = 60_000;

/// Pre-optimization numbers measured on the reference container (1 CPU):
/// ms per single run (best of 5 × 40-run averages) and seconds for the
/// serial 69-point sweep.
const BASELINE_SINGLE_MS: f64 = 45.1;
const BASELINE_SWEEP_SERIAL_S: f64 = 6.571;

fn single_run(bench: SpecBenchmark, protocol: ProtocolKind) -> RunStats {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(CpuModel::DerivO3)
            .build(),
    );
    let pid = sys.spawn_process();
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion()
}

fn sweep_points() -> Vec<(SpecBenchmark, ProtocolKind)> {
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
    ];
    SpecBenchmark::ALL
        .into_iter()
        .flat_map(|b| protocols.into_iter().map(move |p| (b, p)))
        .collect()
}

fn time_sweep(threads: usize) -> (DriverReport, Vec<RunStats>) {
    let (stats, report) = ExperimentSet::new(sweep_points())
        .threads(threads)
        .run_with_report(|&(b, p)| single_run(b, p));
    (report, stats)
}

fn main() {
    let threads = driver::default_threads();
    println!("bench_driver: {threads} worker thread(s) available\n");

    // --- single-simulation throughput: best of `reps` batches ----------
    let bench = SpecBenchmark::ALL[0];
    let (batches, runs_per_batch) = (5, 20);
    for _ in 0..3 {
        single_run(bench, ProtocolKind::Mesi); // warm-up
    }
    // One run's dispatched-event count (deterministic across repeats)
    // gives the event-throughput denominator.
    let events_per_run = single_run(bench, ProtocolKind::Mesi).hierarchy.dispatched;
    let mut best_ms = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..runs_per_batch {
            single_run(bench, ProtocolKind::Mesi);
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / runs_per_batch as f64;
        best_ms = best_ms.min(ms);
    }
    let events_per_sec = events_per_run as f64 / (best_ms / 1000.0);
    println!(
        "single run ({} x {INSTRUCTIONS} instr): {best_ms:.1} ms/run \
         (baseline {BASELINE_SINGLE_MS} ms, ratio {:.2}x)",
        bench.name(),
        BASELINE_SINGLE_MS / best_ms,
    );
    println!(
        "event throughput: {events_per_run} events/run, {:.0} k events/s",
        events_per_sec / 1000.0
    );

    // --- sweep: serial vs parallel -------------------------------------
    let (serial_report, serial_stats) = time_sweep(1);
    let serial_s = serial_report.total_wall_s;
    println!("fig7 sweep, serial   (69 runs): {serial_s:.3} s");
    let (parallel_report, parallel_stats) = time_sweep(threads);
    let parallel_s = parallel_report.total_wall_s;
    println!("fig7 sweep, {threads:>2} thread(s)        : {parallel_s:.3} s");
    assert_eq!(
        serial_stats, parallel_stats,
        "serial and parallel sweeps must produce identical per-run stats"
    );
    println!("per-run stats identical across schedules: ok");
    let speedup = serial_s / parallel_s;
    println!(
        "sweep speedup {speedup:.2}x on {threads} thread(s) \
         (baseline serial {BASELINE_SWEEP_SERIAL_S} s)"
    );
    if let Some(slow) = serial_report.slowest() {
        let (b, p) = sweep_points()[slow.index];
        println!(
            "slowest point: {} / {p:?} at {:.1} ms",
            b.name(),
            slow.wall_s * 1000.0
        );
    }

    // --- report ---------------------------------------------------------
    let json = Json::object([
        ("instructions_per_run", Json::Uint(INSTRUCTIONS)),
        (
            "baseline",
            Json::object([
                ("single_run_ms", Json::Float(BASELINE_SINGLE_MS)),
                ("sweep_serial_s", Json::Float(BASELINE_SWEEP_SERIAL_S)),
            ]),
        ),
        (
            "current",
            Json::object([
                ("single_run_ms", Json::Float(best_ms)),
                (
                    "single_run_speedup",
                    Json::Float(BASELINE_SINGLE_MS / best_ms),
                ),
                ("events_per_run", Json::Uint(events_per_run)),
                ("events_per_sec", Json::Float(events_per_sec)),
                ("sweep_serial_s", Json::Float(serial_s)),
                ("sweep_parallel_s", Json::Float(parallel_s)),
                ("sweep_threads", Json::Uint(threads as u64)),
                ("sweep_speedup", Json::Float(speedup)),
                ("serial_parallel_stats_identical", Json::Bool(true)),
            ]),
        ),
        ("sweep_serial", serial_report.to_json()),
        ("sweep_parallel", parallel_report.to_json()),
    ]);
    std::fs::write("BENCH_driver.json", json.to_pretty()).expect("write BENCH_driver.json");
    println!("\nwrote BENCH_driver.json");
}
