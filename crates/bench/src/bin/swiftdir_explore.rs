//! `swiftdir-explore`: bounded-exhaustive schedule exploration,
//! differential cross-protocol checking, and the Table I–III
//! transition-coverage gate.
//!
//! ```text
//! swiftdir-explore [--smoke] [--coverage] [--diff] [--oracle]
//!                  [--depth-profile] [--protocol NAME]
//!                  [--cores N] [--blocks N] [--ops N] [--streams N]
//!                  [--depth N] [--window N] [--seeds N]
//!                  [--progress FILE|-] [--checkpoint FILE] [--resume FILE]
//! ```
//!
//! * default — explore `--streams` contended streams per protocol with
//!   the given scenario shape, printing schedules explored, states
//!   pruned, sleep-set skips, and transition coverage. Any protocol
//!   error, invariant violation, or budget truncation fails the run.
//! * `--diff` — additionally run the differential layer: architectural
//!   equivalence of all four protocols on well-separated streams, and
//!   SwiftDir≡MESI schedule-tree isomorphism on WP-free streams.
//! * `--oracle` — additionally run the walker oracle: the undo-log
//!   backtracking explorer and the fork-based explorer must produce
//!   whole-report-identical results on every stream.
//! * `--smoke` — the CI configuration: exhaustive 2-core × 2-block
//!   exploration for every protocol plus the differential layer and
//!   the walker oracle.
//! * `--coverage` — the CI coverage gate: union the transition matrices
//!   from exploration and a `--seeds`-sized fuzz sweep, then require
//!   exact Table I–III coverage per protocol — every legal (state,
//!   event) pair observed, nothing outside the legal set — printing any
//!   uncovered or illegal pairs.
//! * `--depth-profile` — print the per-depth walk profile (nodes,
//!   backtracks, undo bytes) per protocol as a metrics snapshot. The
//!   profile is collected on every exploration run regardless; this
//!   flag only controls the printout.
//! * `--progress FILE|-` — stream `swiftdir.progress.v1` heartbeats
//!   (JSONL, one campaign unit per explored tree) to `FILE` (`-` =
//!   stdout) during the exploration suite; the final record folds in
//!   the campaign-wide depth profile. `SWIFTDIR_PROGRESS` /
//!   `SWIFTDIR_PROGRESS_INTERVAL_MS` set the same knobs from the
//!   environment. Telemetry is passive: reports are bit-identical with
//!   it on or off.
//! * `--checkpoint FILE` / `--resume FILE` — journal every completed
//!   schedule tree to a `swiftdir.ckpt.v1` file, and resume a killed
//!   exploration from its last durable record. Resume granularity is
//!   the tree (a tree killed mid-walk is deterministically re-walked),
//!   so the finished campaign's digest set is bit-identical to an
//!   uninterrupted run. On resume, coverage soundness is still checked
//!   over the freshly walked trees (a subset can only observe a subset
//!   of legal transitions); depth profiles cover fresh trees only.
//!
//! Exits non-zero on any failure.

use std::process::ExitCode;
use std::sync::Arc;

use sim_engine::{CampaignCounters, MetricsRegistry, ProgressSampler};
use swiftdir_coherence::{CoverageSpec, ObservedCoverage, ProtocolKind};
use swiftdir_core::diff::{
    architectural_diff, contended_stream, explored_equivalence, tiny_config, well_separated_stream,
};
use swiftdir_core::driver;
use swiftdir_core::explore::{
    explore_campaign, explore_parallel, DepthProfile, ExploreConfig, ExploreMode, EXPLORE_PHASES,
};
use swiftdir_core::fuzz::{run_fuzz_many, FuzzConfig};
use swiftdir_core::{
    explore_grid_digest, run_explore_campaign_resumable, CheckpointWriter, CkptHeader, ExploreUnit,
    ProgressConfig,
};

struct Args {
    smoke: bool,
    coverage: bool,
    diff: bool,
    oracle: bool,
    depth_profile: bool,
    protocols: Vec<ProtocolKind>,
    cores: usize,
    blocks: usize,
    ops: usize,
    streams: u64,
    depth: usize,
    window: u64,
    seeds: u64,
    progress: Option<String>,
    checkpoint: Option<String>,
    resume: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        coverage: false,
        diff: false,
        oracle: false,
        depth_profile: false,
        protocols: ProtocolKind::ALL.to_vec(),
        cores: 2,
        blocks: 2,
        ops: 6,
        streams: 8,
        depth: 4096,
        window: 48,
        seeds: 500,
        progress: None,
        checkpoint: None,
        resume: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.ops = 5;
                args.streams = 5;
            }
            "--coverage" => args.coverage = true,
            "--diff" => args.diff = true,
            "--oracle" => args.oracle = true,
            "--depth-profile" => args.depth_profile = true,
            "--cores" => args.cores = value("--cores")?.parse().map_err(|e| format!("{e}"))?,
            "--blocks" => args.blocks = value("--blocks")?.parse().map_err(|e| format!("{e}"))?,
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("{e}"))?,
            "--streams" => {
                args.streams = value("--streams")?.parse().map_err(|e| format!("{e}"))?
            }
            "--depth" => args.depth = value("--depth")?.parse().map_err(|e| format!("{e}"))?,
            "--window" => args.window = value("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--progress" => args.progress = Some(value("--progress")?),
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--resume" => args.resume = Some(value("--resume")?),
            "--protocol" => {
                let name = value("--protocol")?;
                args.protocols = vec![match name.to_ascii_lowercase().as_str() {
                    "msi" => ProtocolKind::Msi,
                    "mesi" => ProtocolKind::Mesi,
                    "smesi" | "s-mesi" => ProtocolKind::SMesi,
                    "swiftdir" => ProtocolKind::SwiftDir,
                    other => return Err(format!("unknown protocol {other:?}")),
                }];
            }
            other => return Err(format!("unknown flag {other:?} (see --help in the doc)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("swiftdir-explore: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    if args.coverage {
        failed |= !coverage_gate(&args);
    } else {
        let mut pcfg = ProgressConfig::from_env();
        if let Some(v) = &args.progress {
            pcfg.sink = ProgressConfig::parse_sink(v);
        }
        let counters = CampaignCounters::new("explore", driver::default_threads(), &EXPLORE_PHASES);
        let sampler = match if args.resume.is_some() {
            // Continue the killed run's heartbeat stream (repair the
            // torn tail, append, mark the first record resumed).
            pcfg.build_resumed(counters)
        } else {
            pcfg.build(counters)
        } {
            Ok(s) => s,
            Err(e) => {
                eprintln!("swiftdir-explore: cannot open progress sink: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut campaign_profile = DepthProfile::default();
        if args.checkpoint.is_some() || args.resume.is_some() {
            failed |= !explore_suite_checkpointed(&args, sampler.as_ref());
            if let Some(s) = &sampler {
                s.finish();
            }
        } else {
            failed |= !explore_suite(&args, sampler.as_ref(), &mut campaign_profile);
            if let Some(s) = &sampler {
                // Fold the campaign-wide depth profile into the final
                // heartbeat so `--depth-profile` data rides every stream.
                s.finish_with_extra(vec![(
                    "depth_profile".to_string(),
                    campaign_profile.to_json(),
                )]);
            }
        }
        if args.diff || args.smoke {
            failed |= !differential_suite(&args);
        }
        if args.oracle || args.smoke {
            failed |= !oracle_suite(&args);
        }
    }

    if failed {
        eprintln!("swiftdir-explore: FAILED");
        ExitCode::FAILURE
    } else {
        println!("swiftdir-explore: OK");
        ExitCode::SUCCESS
    }
}

/// Per-protocol bounded-exhaustive exploration over seeded contended
/// streams. Returns false on any error or truncation. Merges every
/// tree's depth profile into `campaign_profile`.
fn explore_suite(
    args: &Args,
    sampler: Option<&Arc<ProgressSampler>>,
    campaign_profile: &mut DepthProfile,
) -> bool {
    let ecfg = ExploreConfig {
        window: args.window,
        max_depth: args.depth,
        ..ExploreConfig::default()
    };
    if let Some(p) = sampler {
        p.counters()
            .add_total(args.protocols.len() as u64 * args.streams);
    }
    let wp_fraction = 0.3;
    let mut ok = true;
    for &protocol in &args.protocols {
        let cfg = tiny_config(args.cores, protocol);
        let mut schedules = 0u64;
        let mut steps = 0u64;
        let mut pruned = 0u64;
        let mut skipped = 0u64;
        let mut coverage = ObservedCoverage::new();
        let mut profile = DepthProfile::default();
        for seed in 0..args.streams {
            let stream = contended_stream(seed, args.cores, args.blocks, args.ops, wp_fraction);
            let (report, p) =
                explore_campaign(&cfg, &stream, &ecfg, driver::default_threads(), sampler);
            profile.merge(&p);
            if let Some(p) = sampler {
                p.counters().add_done(1);
                p.tick();
            }
            if let Some(e) = &report.error {
                eprintln!("FAIL {protocol:?} stream {seed}: {e}");
                ok = false;
                continue;
            }
            if report.truncated {
                eprintln!(
                    "FAIL {protocol:?} stream {seed}: truncated (not exhaustive); \
                     raise --depth or shrink the scenario"
                );
                ok = false;
                continue;
            }
            schedules += report.schedules;
            steps += report.steps;
            pruned += report.pruned;
            skipped += report.sleep_skipped;
            coverage.merge(&report.coverage);
        }
        let report = CoverageSpec::for_protocol(protocol).check(&coverage);
        let [(l1c, l1t), (llcc, llct), (evc, evt)] = report.covered();
        println!(
            "{protocol:?}: {} streams, {schedules} schedules, {steps} steps, \
             {pruned} pruned, {skipped} sleep-skipped; coverage L1 {l1c}/{l1t}, \
             LLC {llcc}/{llct}, events {evc}/{evt}",
            args.streams
        );
        if !report.is_sound() {
            eprintln!("FAIL {protocol:?}: exploration observed illegal transitions\n{report}");
            ok = false;
        }
        if args.depth_profile {
            let mut reg = MetricsRegistry::new();
            let prefix = format!("explore.{}.", format!("{protocol:?}").to_ascii_lowercase());
            profile.export_into(&mut reg, &prefix);
            println!("{}", reg.snapshot().to_pretty());
        }
        campaign_profile.merge(&profile);
    }
    ok
}

/// The durable exploration path behind `--checkpoint` / `--resume`:
/// the same (protocol × stream) grid as [`explore_suite`], with every
/// completed tree journaled before it is acknowledged. Prints the
/// final digest set — the value a kill/resume sequence must reproduce
/// bit for bit.
fn explore_suite_checkpointed(args: &Args, sampler: Option<&Arc<ProgressSampler>>) -> bool {
    let ecfg = ExploreConfig {
        window: args.window,
        max_depth: args.depth,
        ..ExploreConfig::default()
    };
    let wp_fraction = 0.3;
    let grid: Vec<ExploreUnit> = args
        .protocols
        .iter()
        .flat_map(|&protocol| {
            let cfg = tiny_config(args.cores, protocol);
            (0..args.streams).map(move |seed| ExploreUnit {
                cfg,
                stream: contended_stream(seed, args.cores, args.blocks, args.ops, wp_fraction),
            })
        })
        .collect();
    let path = args
        .resume
        .as_deref()
        .or(args.checkpoint.as_deref())
        .expect("caller checked");
    let header = CkptHeader {
        kind: "explore".to_string(),
        campaign: "explore".to_string(),
        config_digest: explore_grid_digest(&grid, &ecfg),
        total: grid.len() as u64,
    };
    let opened = if args.resume.is_some() {
        CheckpointWriter::resume(std::path::Path::new(path), &header)
    } else {
        CheckpointWriter::create(std::path::Path::new(path), &header).map(|w| (w, Vec::new()))
    };
    let (mut writer, resumed_units) = match opened {
        Ok(v) => v,
        Err(e) => {
            eprintln!("swiftdir-explore: checkpoint {path}: {e}");
            return false;
        }
    };
    let outcome = match run_explore_campaign_resumable(
        &grid,
        &ecfg,
        None,
        sampler,
        Some(&mut writer),
        resumed_units,
        None,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swiftdir-explore: checkpoint {path}: {e}");
            return false;
        }
    };

    let mut ok = true;
    for unit in &outcome.units {
        if let Some(f) = &unit.failure {
            eprintln!("FAIL explore unit {}: {f}", unit.index);
            ok = false;
        }
    }
    // Coverage soundness over the freshly walked trees, per protocol.
    // A resumed campaign only re-observes a subset of trees, which can
    // only show a subset of the legal transitions — soundness (nothing
    // illegal) stays checkable; completeness is the coverage gate's
    // job, not this path's.
    for (pi, &protocol) in args.protocols.iter().enumerate() {
        let mut coverage = ObservedCoverage::new();
        let (mut schedules, mut steps, mut fresh) = (0u64, 0u64, 0u64);
        for seed in 0..args.streams {
            let idx = pi as u64 * args.streams + seed;
            if let Some(report) = &outcome.reports[idx as usize] {
                fresh += 1;
                coverage.merge(&report.coverage);
                if report.truncated {
                    eprintln!(
                        "FAIL {protocol:?} stream {seed}: truncated (not exhaustive); \
                         raise --depth or shrink the scenario"
                    );
                    ok = false;
                }
            }
            if let Some(u) = outcome.units.iter().find(|u| u.index == idx) {
                schedules += u.schedules;
                steps += u.steps;
            }
        }
        let report = CoverageSpec::for_protocol(protocol).check(&coverage);
        if !report.is_sound() {
            eprintln!("FAIL {protocol:?}: exploration observed illegal transitions\n{report}");
            ok = false;
        }
        println!(
            "{protocol:?}: {} streams ({fresh} fresh), {schedules} schedules, {steps} steps",
            args.streams
        );
    }
    println!(
        "swiftdir-explore: {} units ({} fresh, {} resumed), digest_set {:#018x}",
        outcome.units.len(),
        outcome.fresh,
        outcome.resumed,
        outcome.digest_set_fnv()
    );
    ok && outcome.complete()
}

/// The walker oracle: the snapshot-free undo-log explorer and the
/// fork-based explorer must produce whole-report-identical results on
/// every stream of the suite, for every protocol.
fn oracle_suite(args: &Args) -> bool {
    let undo_ecfg = ExploreConfig {
        window: args.window,
        max_depth: args.depth,
        ..ExploreConfig::default()
    };
    let fork_ecfg = ExploreConfig {
        mode: ExploreMode::Fork,
        ..undo_ecfg
    };
    let wp_fraction = 0.3;
    let mut ok = true;
    let mut schedules = 0u64;
    for &protocol in &args.protocols {
        let cfg = tiny_config(args.cores, protocol);
        for seed in 0..args.streams {
            let stream = contended_stream(seed, args.cores, args.blocks, args.ops, wp_fraction);
            let undo = explore_parallel(&cfg, &stream, &undo_ecfg);
            let fork = explore_parallel(&cfg, &stream, &fork_ecfg);
            if undo != fork {
                eprintln!(
                    "FAIL oracle {protocol:?} stream {seed}: undo-log and fork walkers \
                     diverged (undo {} schedules / {} steps, fork {} schedules / {} steps)",
                    undo.schedules, undo.steps, fork.schedules, fork.steps
                );
                ok = false;
                continue;
            }
            schedules += undo.schedules;
        }
    }
    if ok {
        println!(
            "oracle: undo-log and fork walkers identical on {} protocols x {} streams \
             ({schedules} schedules)",
            args.protocols.len(),
            args.streams
        );
    }
    ok
}

/// The differential layer: architectural equivalence across all
/// protocols on well-separated streams, and SwiftDir≡MESI schedule-tree
/// isomorphism on WP-free contended streams.
fn differential_suite(args: &Args) -> bool {
    let mut ok = true;
    let cores = args.cores.max(3);
    for seed in 0..6 {
        let stream = well_separated_stream(seed, cores, 6, 60, 0.3);
        if let Err(e) = architectural_diff(&stream, cores, &ProtocolKind::ALL) {
            eprintln!("FAIL differential (separated stream {seed}): {e}");
            ok = false;
        }
    }
    let ecfg = ExploreConfig {
        window: args.window,
        max_depth: args.depth,
        ..ExploreConfig::default()
    };
    let mut schedules = 0u64;
    for seed in 0..4 {
        let stream = contended_stream(seed, 2, 2, 5, 0.0);
        match explored_equivalence(&stream, 2, &ecfg) {
            Ok((mesi, _)) => schedules += mesi.schedules,
            Err(e) => {
                eprintln!("FAIL differential (explored stream {seed}): {e}");
                ok = false;
            }
        }
    }
    if ok {
        println!(
            "differential: 6 separated streams x 4 protocols agree; \
             SwiftDir==MESI on 4 explored trees ({schedules} schedules)"
        );
    }
    ok
}

/// The CI coverage gate: explorer coverage plus a fuzz sweep must cover
/// every legal Table I–III transition per protocol, and nothing else.
fn coverage_gate(args: &Args) -> bool {
    let ecfg = ExploreConfig {
        window: args.window,
        max_depth: args.depth,
        ..ExploreConfig::default()
    };
    let mut ok = true;
    for &protocol in &args.protocols {
        let mut observed = ObservedCoverage::new();
        // Explorer contribution: every transition reachable in the tiny
        // scenario, across all schedules.
        let cfg = tiny_config(2, protocol);
        for seed in 0..4 {
            let stream = contended_stream(seed, 2, 2, 5, 0.3);
            let report = explore_parallel(&cfg, &stream, &ecfg);
            if let Some(e) = &report.error {
                eprintln!("FAIL {protocol:?} explorer stream {seed}: {e}");
                ok = false;
            }
            observed.merge(&report.coverage);
        }
        // Fuzz contribution: eviction/recall/jitter pressure the tiny
        // exhaustive scenario cannot reach. The hot variant hammers two
        // blocks to hit upgrade races. The whole sweep fans over worker
        // threads; reports return in seed order, so the coverage union
        // and the failure output are thread-count-independent.
        let sweep: Vec<FuzzConfig> = (0..args.seeds)
            .flat_map(|seed| {
                let mut cfg = FuzzConfig::new(seed, protocol);
                cfg.ops = 300;
                let mut hot = FuzzConfig::new(seed ^ 0xdead_beef, protocol);
                hot.ops = 300;
                hot.blocks = 2;
                hot.store_fraction = 0.6;
                [cfg, hot]
            })
            .collect();
        for (cfg, report) in sweep.iter().zip(run_fuzz_many(&sweep)) {
            if let Some(f) = report.failure {
                let hot = if cfg.blocks == 2 { " hot" } else { "" };
                eprintln!("FAIL {protocol:?} fuzz{hot} seed {}: {f}", cfg.seed);
                ok = false;
            }
            observed.add(&report.stats);
        }
        let report = CoverageSpec::for_protocol(protocol).check(&observed);
        println!("{report}");
        if !report.is_clean() {
            ok = false;
        }
    }
    ok
}
