//! `swiftdir-fuzz`: deterministic protocol stress fuzzing.
//!
//! Drives seeded adversarial access streams (see `swiftdir_core::fuzz`)
//! against the coherence hierarchy while every global invariant — SWMR,
//! directory-superset sharer tracking, transient-occupancy bounds, and
//! the golden data-value model — is audited after every simulated event.
//!
//! ```text
//! swiftdir-fuzz [--seeds N] [--seed X] [--protocol NAME] [--ops N]
//!               [--jitter N] [--cores N] [--banks N] [--smoke]
//!               [--minimize] [--replay FILE]
//!               [--progress FILE|-] [--checkpoint FILE] [--resume FILE]
//! ```
//!
//! * `--seeds N` — fuzz seeds `0..N` (default 100) per protocol.
//! * `--seed X` — fuzz exactly one seed.
//! * `--protocol NAME` — limit to `msi|mesi|smesi|swiftdir` (default all).
//! * `--ops N` / `--jitter N` — override the per-run operation count and
//!   maximum per-hop jitter.
//! * `--cores N` / `--banks N` — override the core count (default 4) and
//!   shard the directory into `N` address-interleaved banks (default 1,
//!   power of two); `--banks` scales the block set so every bank stays
//!   contended.
//! * `--smoke` — the CI configuration: 25 seeds, 150 ops each.
//! * `--minimize` — on failure, shrink the failing scenario: first the
//!   scenario knobs, then the concrete access stream (delta-debugging),
//!   and write the minimal repro to `swiftdir-fuzz-min-<proto>-<seed>.stream`.
//! * `--replay FILE` — replay a `.stream` repro written by `--minimize`
//!   (or by hand) instead of fuzzing; exits non-zero if it still fails.
//! * `--progress FILE|-` — stream `swiftdir.progress.v1` heartbeats
//!   (JSONL) to `FILE` (`-` = stdout) while the campaign runs; follow
//!   live with `swiftdir-report --follow FILE`. `SWIFTDIR_PROGRESS` /
//!   `SWIFTDIR_PROGRESS_INTERVAL_MS` set the same knobs from the
//!   environment. Telemetry is passive: reports and digests are
//!   bit-identical with it on or off.
//! * `--checkpoint FILE` — journal every completed seed to `FILE`
//!   (`swiftdir.ckpt.v1`): a campaign killed at any instant loses only
//!   in-flight seeds.
//! * `--resume FILE` — continue a checkpointed campaign: seeds already
//!   journaled are skipped, a torn trailing record (the write the kill
//!   interrupted) is repaired, and the finished campaign's digest set
//!   is bit-identical to an uninterrupted run at any thread count. A
//!   missing `FILE` degrades to a fresh `--checkpoint` run. With
//!   `--progress FILE`, the heartbeat stream is repaired and continued
//!   too (the first new record carries `"resumed": true`).
//!
//! Exits non-zero if any seed fails. Every failure line carries the
//! exact `FuzzConfig` needed to replay it bit-for-bit, and `--minimize`
//! additionally leaves a generator-independent op-for-op repro on disk.

use std::process::ExitCode;

use swiftdir_coherence::ProtocolKind;
use swiftdir_core::fuzz::{
    minimize, minimize_stream, replay, run_fuzz, run_fuzz_campaign, FuzzConfig, FUZZ_PHASES,
};
use swiftdir_core::stream::StreamFile;
use swiftdir_core::{
    default_threads, fuzz_grid_digest, run_fuzz_campaign_resumable, CheckpointWriter, CkptHeader,
    ProgressConfig,
};

use sim_engine::CampaignCounters;
use std::path::Path;

const ALL_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Msi,
    ProtocolKind::Mesi,
    ProtocolKind::SMesi,
    ProtocolKind::SwiftDir,
];

struct Args {
    seeds: u64,
    one_seed: Option<u64>,
    protocols: Vec<ProtocolKind>,
    ops: Option<usize>,
    jitter: Option<u64>,
    cores: Option<usize>,
    banks: Option<usize>,
    do_minimize: bool,
    replay_file: Option<String>,
    progress: Option<String>,
    checkpoint: Option<String>,
    resume: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 100,
        one_seed: None,
        protocols: ALL_PROTOCOLS.to_vec(),
        ops: None,
        jitter: None,
        cores: None,
        banks: None,
        do_minimize: false,
        replay_file: None,
        progress: None,
        checkpoint: None,
        resume: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.one_seed = Some(value("--seed")?.parse().map_err(|e| format!("{e}"))?),
            "--ops" => args.ops = Some(value("--ops")?.parse().map_err(|e| format!("{e}"))?),
            "--jitter" => {
                args.jitter = Some(value("--jitter")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--cores" => args.cores = Some(value("--cores")?.parse().map_err(|e| format!("{e}"))?),
            "--banks" => {
                let banks: usize = value("--banks")?.parse().map_err(|e| format!("{e}"))?;
                if !banks.is_power_of_two() {
                    return Err(format!("--banks must be a power of two, got {banks}"));
                }
                args.banks = Some(banks);
            }
            "--protocol" => {
                let name = value("--protocol")?;
                args.protocols = vec![match name.to_ascii_lowercase().as_str() {
                    "msi" => ProtocolKind::Msi,
                    "mesi" => ProtocolKind::Mesi,
                    "smesi" | "s-mesi" => ProtocolKind::SMesi,
                    "swiftdir" => ProtocolKind::SwiftDir,
                    other => return Err(format!("unknown protocol {other:?}")),
                }];
            }
            "--smoke" => {
                args.seeds = 25;
                args.ops = Some(150);
            }
            "--minimize" => args.do_minimize = true,
            "--replay" => args.replay_file = Some(value("--replay")?),
            "--progress" => args.progress = Some(value("--progress")?),
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--resume" => args.resume = Some(value("--resume")?),
            other => return Err(format!("unknown flag {other:?} (see --help in the doc)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("swiftdir-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.replay_file {
        return replay_file(path);
    }

    let seeds: Vec<u64> = match args.one_seed {
        Some(s) => vec![s],
        None => (0..args.seeds).collect(),
    };

    // The (protocol, seed) grid is embarrassingly parallel: fan it over
    // the experiment driver (`SWIFTDIR_THREADS` / host parallelism).
    // Reports come back in grid order, so the output — including the
    // failure lines — is identical to the old serial loop.
    let grid: Vec<FuzzConfig> = args
        .protocols
        .iter()
        .flat_map(|&protocol| {
            seeds.iter().map(move |&seed| {
                let mut cfg = FuzzConfig::new(seed, protocol);
                if let Some(ops) = args.ops {
                    cfg.ops = ops;
                }
                if let Some(j) = args.jitter {
                    cfg.jitter_max = j;
                }
                if let Some(c) = args.cores {
                    cfg.cores = c;
                }
                if let Some(b) = args.banks {
                    cfg.banks = b;
                    // Spread the contended block set over every bank.
                    cfg.blocks = cfg.blocks.max(2 * b);
                }
                cfg
            })
        })
        .collect();

    let mut pcfg = ProgressConfig::from_env();
    if let Some(v) = &args.progress {
        pcfg.sink = ProgressConfig::parse_sink(v);
    }
    let counters = CampaignCounters::new("fuzz", default_threads(), &FUZZ_PHASES);
    let sampler = match if args.resume.is_some() {
        // Continue the killed run's heartbeat stream (repair the torn
        // tail, append, mark the first record resumed).
        pcfg.build_resumed(counters)
    } else {
        pcfg.build(counters)
    } {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swiftdir-fuzz: cannot open progress sink: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.checkpoint.is_some() || args.resume.is_some() {
        return checkpointed_campaign(&args, &grid, sampler.as_ref());
    }
    let reports = run_fuzz_campaign(&grid, None, sampler.as_ref());
    if let Some(s) = &sampler {
        s.finish();
    }

    let runs = reports.len() as u64;
    let mut events = 0u64;
    let mut failures = 0u64;
    for (cfg, report) in grid.iter().zip(&reports) {
        events += report.events;
        if let Some(failure) = &report.failure {
            let (protocol, seed) = (cfg.protocol, cfg.seed);
            failures += 1;
            eprintln!("FAIL {protocol:?} seed {seed}: {failure}");
            eprintln!("  replay: {cfg:?}");
            if args.do_minimize {
                let small = minimize(cfg);
                let small_report = run_fuzz(&small);
                eprintln!("  minimized: {small:?}");
                if let Some(f) = small_report.failure {
                    eprintln!("  minimized failure: {f}");
                }
                // Delta-debug the concrete access stream and leave a
                // generator-independent repro on disk.
                let stream = minimize_stream(&small.stream_file(), None);
                let path = format!(
                    "swiftdir-fuzz-min-{}-{seed}.stream",
                    format!("{protocol:?}").to_ascii_lowercase()
                );
                match std::fs::write(&path, stream.to_text()) {
                    Ok(()) => eprintln!(
                        "  minimal repro: {} ops -> {path} (replay with --replay {path})",
                        stream.ops.len()
                    ),
                    Err(e) => eprintln!("  could not write {path}: {e}"),
                }
            }
        }
    }

    println!(
        "swiftdir-fuzz: {runs} runs ({} protocols x {} seeds), {events} events, {failures} failures",
        args.protocols.len(),
        seeds.len(),
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The durable campaign path behind `--checkpoint` / `--resume`: every
/// completed seed is journaled before it is acknowledged, previously
/// journaled seeds are skipped, and the final digest set is printed —
/// the value a kill/resume sequence must reproduce bit for bit.
fn checkpointed_campaign(
    args: &Args,
    grid: &[FuzzConfig],
    sampler: Option<&std::sync::Arc<sim_engine::ProgressSampler>>,
) -> ExitCode {
    let path = args
        .resume
        .as_deref()
        .or(args.checkpoint.as_deref())
        .expect("caller checked");
    let header = CkptHeader {
        kind: "fuzz".to_string(),
        campaign: "fuzz".to_string(),
        config_digest: fuzz_grid_digest(grid),
        total: grid.len() as u64,
    };
    let opened = if args.resume.is_some() {
        CheckpointWriter::resume(Path::new(path), &header)
    } else {
        CheckpointWriter::create(Path::new(path), &header).map(|w| (w, Vec::new()))
    };
    let (mut writer, resumed_units) = match opened {
        Ok(v) => v,
        Err(e) => {
            eprintln!("swiftdir-fuzz: checkpoint {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match run_fuzz_campaign_resumable(
        grid,
        None,
        sampler,
        Some(&mut writer),
        resumed_units,
        None,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swiftdir-fuzz: checkpoint {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(s) = sampler {
        s.finish();
    }

    let mut failures = 0u64;
    let mut events = 0u64;
    for unit in &outcome.units {
        events += unit.events;
        if let Some(f) = &unit.failure {
            failures += 1;
            let cfg = &grid[unit.index as usize];
            eprintln!("FAIL {:?} seed {}: {f}", cfg.protocol, cfg.seed);
            eprintln!("  replay: {cfg:?}");
            if args.do_minimize && outcome.reports[unit.index as usize].is_some() {
                let small = minimize(cfg);
                eprintln!("  minimized: {small:?}");
            }
        }
    }
    println!(
        "swiftdir-fuzz: {} units ({} fresh, {} resumed), {events} events, \
         {failures} failures, digest_set {:#018x}",
        outcome.units.len(),
        outcome.fresh,
        outcome.resumed,
        outcome.digest_set_fnv()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Replays a `.stream` repro file; exit status mirrors the outcome.
fn replay_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("swiftdir-fuzz: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match StreamFile::parse(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("swiftdir-fuzz: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = replay(&file);
    println!(
        "swiftdir-fuzz: replayed {} ops ({:?}, {} cores), {} events, digest {:#018x}",
        file.ops.len(),
        file.protocol,
        file.cores,
        report.events,
        report.digest
    );
    match report.failure {
        None => {
            println!("swiftdir-fuzz: replay clean");
            ExitCode::SUCCESS
        }
        Some(f) => {
            eprintln!("FAIL replay of {path}: {f}");
            ExitCode::FAILURE
        }
    }
}
