//! `swiftdir-report`: renders a human-readable run report from the
//! machine-readable snapshot a traced run writes
//! (`<base>.metrics.json`, see `swiftdir_core::obs`), and consumes
//! `swiftdir.progress.v1` campaign heartbeat streams.
//!
//! ```text
//! swiftdir-report <run.metrics.json>...
//! swiftdir-report --follow <heartbeats.jsonl>
//! swiftdir-report --check-progress <heartbeats.jsonl>...
//! ```
//!
//! * default — for each snapshot, prints the run summary (instructions,
//!   ROI cycles, IPC), the per-request-class latency quantiles, the L1
//!   and LLC transition-count matrices, the Table III coherence-event
//!   counts, and the DRAM counters. Snapshots from newer writers render
//!   too: any `swiftdir.run.*` schema is accepted and unknown fields
//!   are ignored.
//! * `--follow` — tails a live heartbeat file (as written by
//!   `swiftdir-fuzz --progress`, `swiftdir-explore --progress`, or
//!   `bench_driver --progress`), rendering each record as a single
//!   status line; on the campaign's final record, prints the campaign
//!   summary and exits.
//! * `--check-progress` — validates whole heartbeat streams (schema,
//!   monotone counters, final-record consistency); exits non-zero and
//!   lists every violation on failure. This is the CI telemetry gate.

use std::io::{IsTerminal, Read, Seek, SeekFrom, Write};
use std::process::ExitCode;
use std::time::Duration;

use sim_engine::ProgressRecord;
use swiftdir_bench::progress_view::{check_progress_text, final_summary, ticker_line};
use swiftdir_bench::report::render_file;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!(
            "usage: swiftdir-report <run.metrics.json>... \
             | --follow <heartbeats.jsonl> \
             | --check-progress <heartbeats.jsonl>..."
        );
        ExitCode::FAILURE
    };
    match args.first().map(String::as_str) {
        Some("--follow") => match &args[1..] {
            [path] => follow(path),
            _ => usage(),
        },
        Some("--check-progress") => {
            args.remove(0);
            if args.is_empty() {
                return usage();
            }
            check_progress(&args)
        }
        Some(_) => render_snapshots(&args),
        None => usage(),
    }
}

fn render_snapshots(paths: &[String]) -> ExitCode {
    let mut ok = true;
    for (i, path) in paths.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match render_file(path) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("swiftdir-report: {path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Tails `path`, rendering heartbeats until the final record arrives.
/// On a TTY the ticker redraws in place; otherwise one line per record.
fn follow(path: &str) -> ExitCode {
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("swiftdir-report: cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tty = std::io::stdout().is_terminal();
    let mut offset = 0u64;
    let mut pending = String::new();
    loop {
        // Re-read from where the last complete line ended; the writer
        // appends whole lines and flushes per record.
        if file.seek(SeekFrom::Start(offset)).is_err() {
            break;
        }
        let mut chunk = String::new();
        if file.read_to_string(&mut chunk).is_err() {
            break;
        }
        offset += chunk.len() as u64;
        pending.push_str(&chunk);
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match ProgressRecord::parse_line(line) {
                Ok(rec) => {
                    if tty {
                        print!("\r\x1b[2K{}", ticker_line(&rec));
                        let _ = std::io::stdout().flush();
                    } else {
                        println!("{}", ticker_line(&rec));
                    }
                    if rec.is_final {
                        if tty {
                            println!();
                        }
                        print!("{}", final_summary(&rec));
                        return ExitCode::SUCCESS;
                    }
                }
                Err(e) => {
                    if tty {
                        println!();
                    }
                    eprintln!("swiftdir-report: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("swiftdir-report: lost {path} before the final record");
    ExitCode::FAILURE
}

fn check_progress(paths: &[String]) -> ExitCode {
    let mut ok = true;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("swiftdir-report: cannot read {path}: {e}");
                ok = false;
                continue;
            }
        };
        match check_progress_text(&text) {
            Ok(check) => {
                println!(
                    "{path}: OK ({} records); {}",
                    check.records,
                    ticker_line(&check.final_record)
                );
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("swiftdir-report: {path}: {e}");
                }
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
