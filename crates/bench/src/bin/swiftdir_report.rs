//! `swiftdir-report`: renders a human-readable run report from the
//! machine-readable snapshot a traced run writes
//! (`<base>.metrics.json`, see `swiftdir_core::obs`).
//!
//! ```text
//! swiftdir-report <run.metrics.json>...
//! ```
//!
//! For each snapshot, prints the run summary (instructions, ROI cycles,
//! IPC), the per-request-class latency quantiles (Hit / GETS / GETS_WP /
//! GETX / Upgrade), the L1 and LLC transition-count matrices, the
//! Table III coherence-event counts, and the DRAM counters.

use std::fmt::Write as _;
use std::process::ExitCode;

use sim_engine::Json;

/// L1 states in matrix order (mirrors `L1State::ALL`).
const L1_STATES: [&str; 10] = [
    "I", "S", "E", "M", "IS_D", "IM_D", "SM_A", "EM_A", "MI_A", "EI_A",
];

/// LLC states in matrix order (mirrors `LlcState::ALL`).
const LLC_STATES: [&str; 4] = ["I", "S", "E", "M"];

/// Request classes in report order (mirrors `RequestClass::ALL`).
const CLASSES: [&str; 5] = ["Hit", "GETS", "GETS_WP", "GETX", "Upgrade"];

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: swiftdir-report <run.metrics.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for (i, path) in paths.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match render(path) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("swiftdir-report: {path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn render(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let snap = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = snap.get("schema").and_then(Json::as_str).unwrap_or("?");
    if schema != "swiftdir.run.v1" {
        return Err(format!("unsupported snapshot schema {schema:?}"));
    }
    let metrics = snap
        .get("metrics")
        .ok_or("snapshot has no \"metrics\" section")?;

    let mut out = String::new();
    let _ = writeln!(out, "SwiftDir run report — {path}");
    summary(&mut out, &snap);
    latency_table(&mut out, metrics);
    matrix(
        &mut out,
        metrics,
        "L1 transitions",
        "protocol.transitions.l1.",
        &L1_STATES,
    );
    matrix(
        &mut out,
        metrics,
        "LLC transitions",
        "protocol.transitions.llc.",
        &LLC_STATES,
    );
    events(&mut out, &snap);
    memory(&mut out, &snap);
    Ok(out)
}

fn get_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn summary(out: &mut String, snap: &Json) {
    let threads = snap
        .get("threads")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    let _ = writeln!(
        out,
        "\n  threads {threads}   instructions {}   ROI cycles {}   IPC {:.3}",
        get_u64(snap, "instructions"),
        get_u64(snap, "roi_cycles"),
        get_f64(snap, "ipc"),
    );
}

fn latency_table(out: &mut String, metrics: &Json) {
    let _ = writeln!(out, "\nRequest latency (cycles)");
    let _ = writeln!(
        out,
        "  {:<8} {:>10} {:>8} {:>6} {:>6} {:>6} {:>6}",
        "class", "count", "mean", "p50", "p90", "p99", "max"
    );
    for class in CLASSES {
        let Some(h) = metrics.get(&format!("protocol.latency.{class}")) else {
            continue;
        };
        let count = get_u64(h, "count");
        let cell = |key: &str| match h.get(key).and_then(Json::as_u64) {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        let mean = match h.get("mean").and_then(Json::as_f64) {
            Some(m) => format!("{m:.1}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "  {class:<8} {count:>10} {mean:>8} {:>6} {:>6} {:>6} {:>6}",
            cell("p50"),
            cell("p90"),
            cell("p99"),
            cell("max"),
        );
    }
}

/// Prints a from→to transition matrix from `{prefix}{from}->{to}`
/// counters, showing only rows and columns with traffic.
fn matrix(out: &mut String, metrics: &Json, title: &str, prefix: &str, states: &[&str]) {
    let cell = |from: &str, to: &str| {
        metrics
            .get(&format!("{prefix}{from}->{to}"))
            .map_or(0, |m| get_u64(m, "value"))
    };
    let live_row = |s: &&&str| states.iter().any(|to| cell(s, to) > 0);
    let live_col = |s: &&&str| states.iter().any(|from| cell(from, s) > 0);
    let rows: Vec<&str> = states.iter().filter(live_row).copied().collect();
    let cols: Vec<&str> = states.iter().filter(live_col).copied().collect();
    let _ = writeln!(out, "\n{title} (from \\ to)");
    if rows.is_empty() {
        let _ = writeln!(out, "  (none)");
        return;
    }
    let _ = write!(out, "  {:<6}", "");
    for to in &cols {
        let _ = write!(out, " {to:>8}");
    }
    let _ = writeln!(out);
    for from in rows {
        let _ = write!(out, "  {from:<6}");
        for to in &cols {
            match cell(from, to) {
                0 => {
                    let _ = write!(out, " {:>8}", ".");
                }
                n => {
                    let _ = write!(out, " {n:>8}");
                }
            }
        }
        let _ = writeln!(out);
    }
}

fn events(out: &mut String, snap: &Json) {
    let Some(events) = snap.get("events").and_then(Json::as_object) else {
        return;
    };
    let _ = writeln!(out, "\nCoherence events (Table III)");
    let mut line = String::new();
    for (name, count) in events {
        let n = count.as_u64().unwrap_or(0);
        if n == 0 {
            continue;
        }
        if line.len() > 60 {
            let _ = writeln!(out, "  {line}");
            line.clear();
        }
        let _ = write!(line, "{name}={n}  ");
    }
    if !line.is_empty() {
        let _ = writeln!(out, "  {}", line.trim_end());
    }
}

fn memory(out: &mut String, snap: &Json) {
    let Some(mem) = snap.get("memory") else {
        return;
    };
    let _ = writeln!(
        out,
        "\nDRAM: {} reads, {} writes, row-hit rate {:.2}",
        get_u64(mem, "reads"),
        get_u64(mem, "writes"),
        get_f64(mem, "row_hit_rate"),
    );
}
