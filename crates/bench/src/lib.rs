//! Shared helpers for the SwiftDir benchmark harness: the run-report
//! renderer behind `swiftdir-report` ([`report`]) and the campaign
//! heartbeat viewer/validator behind its `--follow` / `--check-progress`
//! modes ([`progress_view`]). Living in a library keeps them unit-
//! testable; the bins stay thin argument parsers.

pub mod progress_view;
pub mod report;

/// The instruction budget figure-level benches default to per run.
pub const DEFAULT_INSTRUCTIONS: u64 = 100_000;
