//! Shared helpers for the SwiftDir benchmark harness live in the bench
//! targets themselves; this library crate exists to anchor the package.

/// The instruction budget figure-level benches default to per run.
pub const DEFAULT_INSTRUCTIONS: u64 = 100_000;
