//! Renders a human-readable run report from the machine-readable
//! snapshot a traced run writes (`<base>.metrics.json`, see
//! `swiftdir_core::obs`).
//!
//! The renderer is deliberately forward-compatible: any snapshot whose
//! schema tag starts with `swiftdir.run.` is accepted (a non-`v1` tag
//! earns a warning line, not a refusal), unknown fields are ignored,
//! and every known section is optional — a snapshot missing its
//! `metrics` section still renders the summary it does carry. Old
//! reporters keep working against newer writers; the only hard errors
//! are unreadable files, invalid JSON, and schema tags from some other
//! family entirely.

use std::fmt::Write as _;

use sim_engine::Json;

/// Schema-tag prefix this renderer accepts (any version).
pub const RUN_SCHEMA_PREFIX: &str = "swiftdir.run.";

/// The snapshot version this renderer was written against.
pub const RUN_SCHEMA_CURRENT: &str = "swiftdir.run.v1";

/// L1 states in matrix order (mirrors `L1State::ALL`).
const L1_STATES: [&str; 10] = [
    "I", "S", "E", "M", "IS_D", "IM_D", "SM_A", "EM_A", "MI_A", "EI_A",
];

/// LLC states in matrix order (mirrors `LlcState::ALL`).
const LLC_STATES: [&str; 4] = ["I", "S", "E", "M"];

/// Request classes in report order (mirrors `RequestClass::ALL`).
const CLASSES: [&str; 5] = ["Hit", "GETS", "GETS_WP", "GETX", "Upgrade"];

/// Reads, parses, and renders one snapshot file.
///
/// # Errors
///
/// Unreadable file, invalid JSON, or a schema tag outside the
/// `swiftdir.run.*` family.
pub fn render_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let snap = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    render_snapshot(path, &snap)
}

/// Renders one parsed snapshot, labelled `label` in the header.
///
/// # Errors
///
/// Only a schema tag outside the `swiftdir.run.*` family; every section
/// of the snapshot itself is optional.
pub fn render_snapshot(label: &str, snap: &Json) -> Result<String, String> {
    let schema = snap.get("schema").and_then(Json::as_str).unwrap_or("?");
    if !schema.starts_with(RUN_SCHEMA_PREFIX) {
        return Err(format!("unsupported snapshot schema {schema:?}"));
    }

    let mut out = String::new();
    let _ = writeln!(out, "SwiftDir run report — {label}");
    if schema != RUN_SCHEMA_CURRENT {
        let _ = writeln!(
            out,
            "  (snapshot schema {schema}; this reporter knows {RUN_SCHEMA_CURRENT} — \
             unknown fields are ignored)"
        );
    }
    summary(&mut out, snap);
    if let Some(metrics) = snap.get("metrics") {
        latency_table(&mut out, metrics);
        matrix(
            &mut out,
            metrics,
            "L1 transitions",
            "protocol.transitions.l1.",
            &L1_STATES,
        );
        matrix(
            &mut out,
            metrics,
            "LLC transitions",
            "protocol.transitions.llc.",
            &LLC_STATES,
        );
    } else {
        let _ = writeln!(out, "\n  (no \"metrics\" section in this snapshot)");
    }
    events(&mut out, snap);
    memory(&mut out, snap);
    Ok(out)
}

fn get_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn summary(out: &mut String, snap: &Json) {
    let threads = snap
        .get("threads")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    let _ = writeln!(
        out,
        "\n  threads {threads}   instructions {}   ROI cycles {}   IPC {:.3}",
        get_u64(snap, "instructions"),
        get_u64(snap, "roi_cycles"),
        get_f64(snap, "ipc"),
    );
}

fn latency_table(out: &mut String, metrics: &Json) {
    let _ = writeln!(out, "\nRequest latency (cycles)");
    let _ = writeln!(
        out,
        "  {:<8} {:>10} {:>8} {:>6} {:>6} {:>6} {:>6}",
        "class", "count", "mean", "p50", "p90", "p99", "max"
    );
    for class in CLASSES {
        let Some(h) = metrics.get(&format!("protocol.latency.{class}")) else {
            continue;
        };
        let count = get_u64(h, "count");
        let cell = |key: &str| match h.get(key).and_then(Json::as_u64) {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        let mean = match h.get("mean").and_then(Json::as_f64) {
            Some(m) => format!("{m:.1}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "  {class:<8} {count:>10} {mean:>8} {:>6} {:>6} {:>6} {:>6}",
            cell("p50"),
            cell("p90"),
            cell("p99"),
            cell("max"),
        );
    }
}

/// Prints a from→to transition matrix from `{prefix}{from}->{to}`
/// counters, showing only rows and columns with traffic.
fn matrix(out: &mut String, metrics: &Json, title: &str, prefix: &str, states: &[&str]) {
    let cell = |from: &str, to: &str| {
        metrics
            .get(&format!("{prefix}{from}->{to}"))
            .map_or(0, |m| get_u64(m, "value"))
    };
    let live_row = |s: &&&str| states.iter().any(|to| cell(s, to) > 0);
    let live_col = |s: &&&str| states.iter().any(|from| cell(from, s) > 0);
    let rows: Vec<&str> = states.iter().filter(live_row).copied().collect();
    let cols: Vec<&str> = states.iter().filter(live_col).copied().collect();
    let _ = writeln!(out, "\n{title} (from \\ to)");
    if rows.is_empty() {
        let _ = writeln!(out, "  (none)");
        return;
    }
    let _ = write!(out, "  {:<6}", "");
    for to in &cols {
        let _ = write!(out, " {to:>8}");
    }
    let _ = writeln!(out);
    for from in rows {
        let _ = write!(out, "  {from:<6}");
        for to in &cols {
            match cell(from, to) {
                0 => {
                    let _ = write!(out, " {:>8}", ".");
                }
                n => {
                    let _ = write!(out, " {n:>8}");
                }
            }
        }
        let _ = writeln!(out);
    }
}

fn events(out: &mut String, snap: &Json) {
    let Some(events) = snap.get("events").and_then(Json::as_object) else {
        return;
    };
    let _ = writeln!(out, "\nCoherence events (Table III)");
    let mut line = String::new();
    for (name, count) in events {
        let n = count.as_u64().unwrap_or(0);
        if n == 0 {
            continue;
        }
        if line.len() > 60 {
            let _ = writeln!(out, "  {line}");
            line.clear();
        }
        let _ = write!(line, "{name}={n}  ");
    }
    if !line.is_empty() {
        let _ = writeln!(out, "  {}", line.trim_end());
    }
}

fn memory(out: &mut String, snap: &Json) {
    let Some(mem) = snap.get("memory") else {
        return;
    };
    let _ = writeln!(
        out,
        "\nDRAM: {} reads, {} writes, row-hit rate {:.2}",
        get_u64(mem, "reads"),
        get_u64(mem, "writes"),
        get_f64(mem, "row_hit_rate"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal but representative v1 snapshot.
    fn snapshot_v1() -> Json {
        Json::object([
            ("schema", Json::from(RUN_SCHEMA_CURRENT)),
            ("threads", Json::array([Json::object::<&str>([])])),
            ("instructions", Json::Uint(1000)),
            ("roi_cycles", Json::Uint(500)),
            ("ipc", Json::Float(2.0)),
            (
                "events",
                Json::object([("GETS", Json::Uint(7)), ("GETX", Json::Uint(0))]),
            ),
            (
                "memory",
                Json::object([
                    ("reads", Json::Uint(3)),
                    ("writes", Json::Uint(1)),
                    ("row_hit_rate", Json::Float(0.5)),
                ]),
            ),
            (
                "metrics",
                Json::object([
                    (
                        "protocol.latency.Hit",
                        Json::object([
                            ("count", Json::Uint(9)),
                            ("mean", Json::Float(1.0)),
                            ("p50", Json::Uint(1)),
                            ("p90", Json::Uint(1)),
                            ("p99", Json::Uint(1)),
                            ("max", Json::Uint(1)),
                        ]),
                    ),
                    (
                        "protocol.transitions.l1.I->S",
                        Json::object([("value", Json::Uint(4))]),
                    ),
                ]),
            ),
        ])
    }

    #[test]
    fn renders_a_v1_snapshot() {
        let text = render_snapshot("t.metrics.json", &snapshot_v1()).unwrap();
        assert!(text.contains("instructions 1000"), "{text}");
        assert!(text.contains("GETS=7"), "{text}");
        assert!(!text.contains("GETX=0"), "zero counts are elided: {text}");
        assert!(text.contains("row-hit rate 0.50"), "{text}");
        assert!(text.contains("Hit"), "{text}");
    }

    #[test]
    fn rejects_foreign_schema_families() {
        let snap = Json::object([("schema", Json::from("someone.elses.v1"))]);
        assert!(render_snapshot("x", &snap).is_err());
        assert!(render_snapshot("x", &Json::object::<&str>([])).is_err());
    }

    /// Satellite regression: a hand-mutated "v2" snapshot — bumped
    /// schema tag, unknown top-level and nested fields, and a dropped
    /// `metrics` section — must still render, with a version note.
    #[test]
    fn tolerates_future_snapshots() {
        let mut members = match snapshot_v1() {
            Json::Object(m) => m,
            _ => unreachable!(),
        };
        for (k, v) in &mut members {
            if k == "schema" {
                *v = Json::from("swiftdir.run.v2");
            }
        }
        members.retain(|(k, _)| k != "metrics");
        members.push(("flux_capacitance".into(), Json::Float(1.21)));
        members.push((
            "per_node_breakdown".into(),
            Json::array([Json::object([("gigawatts", Json::Bool(true))])]),
        ));
        let snap = Json::Object(members);

        let text = render_snapshot("future.metrics.json", &snap).unwrap();
        assert!(text.contains("swiftdir.run.v2"), "{text}");
        assert!(text.contains("unknown fields are ignored"), "{text}");
        assert!(text.contains("instructions 1000"), "{text}");
        assert!(text.contains("no \"metrics\" section"), "{text}");
    }

    #[test]
    fn tolerates_missing_sections() {
        let snap = Json::object([("schema", Json::from(RUN_SCHEMA_CURRENT))]);
        let text = render_snapshot("bare", &snap).unwrap();
        assert!(text.contains("instructions 0"), "{text}");
    }
}
