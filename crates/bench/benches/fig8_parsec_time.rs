//! Figure 8 — multi-threaded PARSEC 3.0: ROI execution time of SwiftDir
//! and S-MESI normalized over MESI (4 cores, 13 synthetic profiles).

use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{ExperimentSet, System, SystemConfig};
use swiftdir_cpu::CpuModel;
use swiftdir_workloads::ParsecBenchmark;

const INSTRUCTIONS_PER_THREAD: u64 = 25_000;

fn roi_cycles(bench: ParsecBenchmark, protocol: ProtocolKind) -> u64 {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(4)
            .protocol(protocol)
            .cpu_model(CpuModel::DerivO3)
            .build(),
    );
    let pid = sys.spawn_process();
    for t in bench.build_threads(&mut sys, pid, INSTRUCTIONS_PER_THREAD) {
        sys.run_thread_stream(pid, t.core, t.stream);
    }
    sys.run_to_completion().roi_cycles()
}

fn main() {
    println!(
        "Figure 8 — PARSEC 3.0 ROI execution time normalized over MESI \
         (4 threads x {INSTRUCTIONS_PER_THREAD} instructions, DerivO3CPU)\n"
    );
    println!(
        "{:<15} {:>10} {:>10} {:>10}",
        "benchmark", "MESI(cyc)", "SwiftDir%", "S-MESI%"
    );
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
    ];
    let points: Vec<(ParsecBenchmark, ProtocolKind)> = ParsecBenchmark::ALL
        .into_iter()
        .flat_map(|b| protocols.into_iter().map(move |p| (b, p)))
        .collect();
    let cycles = ExperimentSet::new(points).run(|&(b, p)| roi_cycles(b, p));

    let mut swift_sum = 0.0;
    let mut smesi_sum = 0.0;
    for (i, bench) in ParsecBenchmark::ALL.into_iter().enumerate() {
        let mesi = cycles[i * 3] as f64;
        let swift = cycles[i * 3 + 1] as f64 / mesi * 100.0;
        let smesi = cycles[i * 3 + 2] as f64 / mesi * 100.0;
        swift_sum += swift;
        smesi_sum += smesi;
        println!(
            "{:<15} {:>10.0} {:>10.2} {:>10.2}",
            bench.name(),
            mesi,
            swift,
            smesi
        );
    }
    let n = ParsecBenchmark::ALL.len() as f64;
    println!(
        "\n{:<15} {:>10} {:>10.2} {:>10.2}",
        "average",
        "100",
        swift_sum / n,
        smesi_sum / n
    );
    println!(
        "\nShape check (paper): SwiftDir shorter than MESI on average \
         (shared reads LLC-served); S-MESI slightly longer than MESI."
    );
}
