//! Figure 9 — multi-threaded read-only benchmarks: re-access time of
//! 1 000–5 000 exploitable shared data items, normalized over MESI.

use swiftdir_coherence::ProtocolKind;
use swiftdir_core::ExperimentSet;
use swiftdir_workloads::ReadOnlySweep;

fn main() {
    println!("Figure 9 — shared-data re-access time normalized over MESI\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10}",
        "amount", "MESI(cyc)", "SwiftDir%", "S-MESI%"
    );
    let amounts = [1000u64, 2000, 3000, 4000, 5000];
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
    ];
    let points: Vec<(u64, ProtocolKind)> = amounts
        .into_iter()
        .flat_map(|a| protocols.into_iter().map(move |p| (a, p)))
        .collect();
    let cycles = ExperimentSet::new(points)
        .run(|&(amount, p)| ReadOnlySweep::new(amount).run(p).reaccess_cycles);

    let mut swift_sum = 0.0;
    let mut smesi_sum = 0.0;
    for (i, amount) in amounts.into_iter().enumerate() {
        let mesi = cycles[i * 3] as f64;
        let swift = cycles[i * 3 + 1] as f64 / mesi * 100.0;
        let smesi = cycles[i * 3 + 2] as f64 / mesi * 100.0;
        swift_sum += swift;
        smesi_sum += smesi;
        println!("{amount:<8} {mesi:>12.0} {swift:>10.2} {smesi:>10.2}");
    }
    let n = amounts.len() as f64;
    println!(
        "\n{:<8} {:>12} {:>10.2} {:>10.2}",
        "average",
        "100",
        swift_sum / n,
        smesi_sum / n
    );
    println!(
        "\nShape check (paper): SwiftDir and S-MESI comparable, both below \
         MESI (E→S forwarding avoided; paper reports 0.46%/0.57% average \
         reduction on its in-order runs)."
    );
}
