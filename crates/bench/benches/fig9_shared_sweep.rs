//! Figure 9 — multi-threaded read-only benchmarks: re-access time of
//! 1 000–5 000 exploitable shared data items, normalized over MESI.

use swiftdir_coherence::ProtocolKind;
use swiftdir_workloads::ReadOnlySweep;

fn main() {
    println!("Figure 9 — shared-data re-access time normalized over MESI\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10}",
        "amount", "MESI(cyc)", "SwiftDir%", "S-MESI%"
    );
    let mut swift_sum = 0.0;
    let mut smesi_sum = 0.0;
    let amounts = [1000u64, 2000, 3000, 4000, 5000];
    for &amount in &amounts {
        let sweep = ReadOnlySweep::new(amount);
        let mesi = sweep.run(ProtocolKind::Mesi).reaccess_cycles as f64;
        let swift = sweep.run(ProtocolKind::SwiftDir).reaccess_cycles as f64 / mesi * 100.0;
        let smesi = sweep.run(ProtocolKind::SMesi).reaccess_cycles as f64 / mesi * 100.0;
        swift_sum += swift;
        smesi_sum += smesi;
        println!("{amount:<8} {mesi:>12.0} {swift:>10.2} {smesi:>10.2}");
    }
    let n = amounts.len() as f64;
    println!(
        "\n{:<8} {:>12} {:>10.2} {:>10.2}",
        "average", "100", swift_sum / n, smesi_sum / n
    );
    println!(
        "\nShape check (paper): SwiftDir and S-MESI comparable, both below \
         MESI (E→S forwarding avoided; paper reports 0.46%/0.57% average \
         reduction on its in-order runs)."
    );
}
