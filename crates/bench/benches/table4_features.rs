//! Table IV — measured feature matrix: whether each protocol (i) serves
//! requests to E-state shared data from the LLC and (ii) performs silent
//! E→M upgrades for unshared data, plus the message cost of each case.

use sim_engine::Cycle;
use swiftdir_coherence::{
    CoherenceEvent, CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind, ServedFrom,
};
use swiftdir_core::ExperimentSet;
use swiftdir_mmu::PhysAddr;

const X: PhysAddr = PhysAddr(0x20_0000);

fn shared_from_llc(p: ProtocolKind) -> (bool, u64) {
    let mut h = Hierarchy::new(HierarchyConfig::table_v(2, p));
    h.issue(Cycle(0), 1, CoreRequest::load(X).write_protected());
    h.run_until_idle();
    h.issue(Cycle(1000), 0, CoreRequest::load(X).write_protected());
    let done = h.run_until_idle();
    (
        done[0].served_from != ServedFrom::RemoteL1,
        done[0].latency().get(),
    )
}

fn silent_upgrade(p: ProtocolKind) -> (bool, u64, u64) {
    let mut h = Hierarchy::new(HierarchyConfig::table_v(2, p));
    h.issue(Cycle(0), 0, CoreRequest::load(X));
    h.run_until_idle();
    let upgrades_before = h.stats().event(CoherenceEvent::Upgrade);
    h.issue(Cycle(1000), 0, CoreRequest::store(X));
    let done = h.run_until_idle();
    let upgrades = h.stats().event(CoherenceEvent::Upgrade) - upgrades_before;
    (upgrades == 0, done[0].latency().get(), upgrades)
}

fn main() {
    println!("Table IV — measured: efficient handling of shared and unshared data\n");
    println!(
        "{:<10} {:>22} {:>24}",
        "protocol", "shared E from LLC", "silent E->M on L1"
    );
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SMesi,
        ProtocolKind::SwiftDir,
    ];
    let rows =
        ExperimentSet::new(protocols.to_vec()).run(|&p| (shared_from_llc(p), silent_upgrade(p)));
    for (p, ((llc, shared_lat), (silent, store_lat, upgrades))) in protocols.into_iter().zip(rows) {
        println!(
            "{:<10} {:>12} ({:>3}cyc) {:>12} ({:>2}cyc, {} upgrades)",
            p.to_string(),
            if llc { "yes" } else { "NO" },
            shared_lat,
            if silent { "yes" } else { "NO" },
            store_lat,
            upgrades,
        );
    }
    println!(
        "\nShape check (paper Table IV): MESI = (x, ok), S-MESI = (ok, x), \
         SwiftDir = (ok, ok)."
    );
}
