//! Figure 10 — write-after-read intensive applications under (a) the
//! in-order `TimingSimpleCPU` and (b) the out-of-order `DerivO3CPU`:
//! execution time normalized over MESI.

use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{ExperimentSet, System, SystemConfig};
use swiftdir_cpu::CpuModel;
use swiftdir_workloads::WarApp;

const ELEMENTS: u64 = 1024; // > the 512-line L1: steady-state WAR

fn run(app: WarApp, protocol: ProtocolKind, model: CpuModel) -> u64 {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(model)
            .build(),
    );
    let pid = sys.spawn_process();
    let progs = app.build(&mut sys, pid, ELEMENTS);
    sys.run_thread_program(pid, 0, progs.warmup.instrs().to_vec());
    sys.run_to_completion();
    sys.run_thread_program(pid, 0, progs.measured.instrs().to_vec());
    sys.run_to_completion().roi_cycles()
}

fn main() {
    println!(
        "Figure 10 — write-after-read intensive apps, time normalized over \
         MESI ({ELEMENTS}-line arrays)\n"
    );
    for (part, label, model) in [
        ("(a)", "TimingSimpleCPU", CpuModel::TimingSimple),
        ("(b)", "DerivO3CPU", CpuModel::DerivO3),
    ] {
        println!("{part} {label}:");
        println!(
            "  {:<18} {:>12} {:>10} {:>10} {:>14}",
            "application", "MESI(cyc)", "SwiftDir%", "S-MESI%", "speedup vs S-MESI"
        );
        let protocols = [
            ProtocolKind::Mesi,
            ProtocolKind::SwiftDir,
            ProtocolKind::SMesi,
        ];
        let points: Vec<(WarApp, ProtocolKind)> = WarApp::ALL
            .into_iter()
            .flat_map(|a| protocols.into_iter().map(move |p| (a, p)))
            .collect();
        let times = ExperimentSet::new(points).run(|&(a, p)| run(a, p, model));
        for (i, app) in WarApp::ALL.into_iter().enumerate() {
            let mesi = times[i * 3] as f64;
            let swift = times[i * 3 + 1] as f64;
            let smesi = times[i * 3 + 2] as f64;
            println!(
                "  {:<18} {:>12.0} {:>10.2} {:>10.2} {:>13.2}x",
                app.to_string(),
                mesi,
                swift / mesi * 100.0,
                smesi / mesi * 100.0,
                smesi / swift,
            );
        }
        println!();
    }
    println!(
        "Shape check (paper): SwiftDir ≈ MESI everywhere; S-MESI pays the \
         Upgrade/ACK per write-after-read; the OoO core amplifies the gap \
         (paper: up to 2.62x on insertion)."
    );
}
