//! Figure 6 — CDF of coherence-request latency: `Load(L1I&L2S)` under
//! MESI vs `Load_WP(L1I&L2S)` under SwiftDir.
//!
//! Reproduction of the paper's security-latency experiment: thousands of
//! shared (write-protected) lines are brought to state S, then a remote
//! core's loads are sampled. The paper reports both series centralized
//! around 17 cycles with no observable difference; the MESI E-state path
//! (the exploitable one) is printed alongside for contrast.

use sim_engine::{Cycle, Histogram};
use swiftdir_coherence::{CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind};
use swiftdir_core::{ExperimentSet, LatencyProbe, SystemConfig};
use swiftdir_mmu::PhysAddr;

const LINES: u64 = 4000;

fn line(i: u64) -> PhysAddr {
    PhysAddr(0x100_0000 + i * 64)
}

/// Samples `Load(L1I&L2S)` (or `Load_WP`) latencies: bring each line to S
/// via `sharers` other cores, then probe from core 3.
fn sample_s_loads(protocol: ProtocolKind, wp: bool, sharers: usize) -> Histogram {
    let mut h = Hierarchy::new(HierarchyConfig::table_v(4, protocol));
    let mut probe = LatencyProbe::new();
    // Prime each line to the target state, then probe it from core 3
    // while the priming cores still hold their copies (interleaved, as
    // the attack itself does — bulk priming would let L1 evictions
    // downgrade old E lines before the probe).
    for i in 0..LINES {
        for s in 0..sharers {
            let mut req = CoreRequest::load(line(i));
            if wp {
                req = req.write_protected();
            }
            h.issue(h.now() + Cycle(10), s, req);
            h.run_until_idle();
        }
        let mut req = CoreRequest::load(line(i));
        if wp {
            req = req.write_protected();
        }
        h.issue(h.now() + Cycle(10), 3, req);
        for c in h.run_until_idle() {
            if c.core == 3 {
                probe.record(&c);
            }
        }
    }
    probe.merged(|k| k.kind == swiftdir_core::AccessKind::Load && k.llc_before.is_some())
}

fn print_cdf(label: &str, h: &Histogram) {
    print!("{label:<28}");
    for (value, frac) in h.cdf() {
        print!(" ({value},{frac:.3})");
    }
    println!();
    println!(
        "{:<28} n={} mean={:.1} p50={} max={}",
        "",
        h.count(),
        h.mean().unwrap_or(0.0),
        h.median().unwrap_or(0),
        h.max().unwrap_or(0),
    );
}

fn main() {
    // Table V system is what the SystemConfig default describes; the raw
    // hierarchy is used here so the probe sees only coherence latency.
    let _ = SystemConfig::default();
    println!("Figure 6 — coherence request latency CDF ({LINES} samples/series)\n");

    // Three independent series:
    //  1. MESI Load(L1I&L2S) — two sharers make the line S;
    //  2. SwiftDir Load_WP(L1I&L2S) — one initial load suffices (I→S),
    //     every subsequent load is the same class;
    //  3. contrast (not in Fig. 6 but the channel it closes): MESI remote
    //     load of E-state data.
    let series = [
        ("MESI Load(L1I&L2S)", ProtocolKind::Mesi, false, 2usize),
        ("SwiftDir Load_WP(L1I&L2S)", ProtocolKind::SwiftDir, true, 1),
        ("MESI Load(L1I&L2E)", ProtocolKind::Mesi, false, 1),
    ];
    let hists = ExperimentSet::new(series.to_vec())
        .run(|&(_, protocol, wp, sharers)| sample_s_loads(protocol, wp, sharers));
    for ((label, ..), h) in series.iter().zip(&hists) {
        print_cdf(label, h);
    }
    let (mesi_s, swift_wp, mesi_e) = (&hists[0], &hists[1], &hists[2]);

    let gap = mesi_e.median().unwrap_or(0) as i64 - mesi_s.median().unwrap_or(0) as i64;
    println!(
        "\nE/S median gap under MESI: {gap} cycles (paper: ~26); \
         SwiftDir WP median {} == MESI S median {} → channel closed",
        swift_wp.median().unwrap_or(0),
        mesi_s.median().unwrap_or(0),
    );
}
