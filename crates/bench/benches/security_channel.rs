//! Security evaluation (paper §V-A and §II-B): covert- and side-channel
//! accuracy per protocol, plus the probe-latency separation that makes
//! the MESI channel work.

use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{CovertChannel, ExperimentSet, SideChannel};

const BITS: usize = 64;
const SEED: u64 = 2022;

fn main() {
    println!("Security — E/S timing-channel attacks ({BITS} bits/trials per run)\n");
    println!(
        "{:<10} {:>16} {:>16} {:>20}",
        "protocol", "covert acc.", "side-ch acc.", "probe latencies"
    );
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
        ProtocolKind::Msi,
    ];
    let outcomes = ExperimentSet::new(protocols.to_vec()).run(|&p| {
        (
            CovertChannel::new(p).transmit_random(BITS, SEED),
            SideChannel::new(p).run_random(BITS, SEED + 1),
        )
    });
    for (p, (covert, side)) in protocols.into_iter().zip(outcomes) {
        let distinct: std::collections::BTreeSet<u64> =
            covert.latencies.iter().map(|c| c.get()).collect();
        let lat: Vec<String> = distinct.iter().map(|l| format!("{l}")).collect();
        println!(
            "{:<10} {:>15.1}% {:>15.1}% {:>20}",
            p.to_string(),
            covert.accuracy() * 100.0,
            side.accuracy() * 100.0,
            format!("{{{}}}", lat.join(",")),
        );
    }
    println!(
        "\nShape check (paper): MESI ≈ 100% on both channels with two latency \
         clusters 26 cycles apart; the secure protocols collapse to one \
         cluster and chance-level accuracy."
    );
}
