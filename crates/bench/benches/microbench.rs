//! Criterion micro-benchmarks of the simulator substrates themselves:
//! event-queue throughput, cache-array operations, TLB lookups, DRAM
//! timing, and the end-to-end hierarchy load path.

use criterion::{criterion_group, criterion_main, Criterion};
use sim_engine::{Cycle, DetRng, EventQueue};
use swiftdir_cache::{CacheArray, CacheGeometry, ReplacementPolicy};
use swiftdir_coherence::{CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind};
use swiftdir_mem::{DramConfig, MemoryController};
use swiftdir_mmu::{Pfn, PhysAddr, Tlb, TlbEntry, Vpn};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..1000u32 {
                q.schedule(Cycle((i as u64 * 7919) % 4096), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc += v as u64;
            }
            acc
        })
    });
}

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("cache/array_insert_get_1k", |b| {
        let geom = CacheGeometry::table_v_l1();
        b.iter(|| {
            let mut array: CacheArray<u8> = CacheArray::new(geom, ReplacementPolicy::Lru);
            let mut rng = DetRng::new(1);
            let mut hits = 0u32;
            for _ in 0..1000 {
                let addr = rng.below(1 << 16) * 64;
                if array.get(addr).is_some() {
                    hits += 1;
                } else {
                    array.insert(addr, 0);
                }
            }
            hits
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("mmu/tlb_lookup_fill_1k", |b| {
        b.iter(|| {
            let mut tlb = Tlb::new(64);
            let mut rng = DetRng::new(2);
            let mut hits = 0u32;
            for _ in 0..1000 {
                let vpn = Vpn(rng.below(128));
                if tlb.lookup(vpn).is_none() {
                    tlb.fill(TlbEntry {
                        vpn,
                        pfn: Pfn(vpn.0 + 100),
                        writable: true,
                        write_protected: false,
                    });
                } else {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("mem/dram_access_1k", |b| {
        b.iter(|| {
            let mut mc = MemoryController::new(DramConfig::default());
            let mut t = Cycle(0);
            for i in 0..1000u64 {
                t = mc.access(t, PhysAddr(i * 64), i % 4 == 0);
            }
            t
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("coherence/hierarchy_1k_loads", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::SwiftDir));
            let mut t = Cycle(0);
            for i in 0..1000u64 {
                let addr = PhysAddr(0x10_0000 + (i % 256) * 64);
                h.issue(t, (i % 2) as usize, CoreRequest::load(addr));
                t += Cycle(5);
            }
            h.run_until_idle().len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_cache_array, bench_tlb, bench_dram, bench_hierarchy
}
criterion_main!(benches);
