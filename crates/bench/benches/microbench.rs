//! Micro-benchmarks of the simulator substrates themselves: event-queue
//! throughput, cache-array operations, TLB lookups, DRAM timing, and the
//! end-to-end hierarchy load path.
//!
//! Hand-rolled harness (no external benchmark framework): each case runs
//! `ITERS` times after `WARMUP` discarded iterations and reports the
//! minimum, median, and mean wall time per iteration. The minimum is the
//! most noise-resistant single number on a busy host; compare minima
//! across commits.

use std::hint::black_box;
use std::time::{Duration, Instant};

use sim_engine::{Cycle, DetRng, EventQueue};
use swiftdir_cache::{CacheArray, CacheGeometry, ReplacementPolicy};
use swiftdir_coherence::{CoreRequest, Hierarchy, HierarchyConfig, ProtocolKind};
use swiftdir_mem::{DramConfig, MemoryController};
use swiftdir_mmu::{Pfn, PhysAddr, Tlb, TlbEntry, Vpn};

const WARMUP: usize = 5;
const ITERS: usize = 30;

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    for _ in 0..WARMUP {
        black_box(f());
    }
    let mut times: Vec<Duration> = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    let min = times[0];
    let median = times[ITERS / 2];
    let mean = times.iter().sum::<Duration>() / ITERS as u32;
    println!(
        "{name:<36} min {:>9.2?}  median {:>9.2?}  mean {:>9.2?}  (n={ITERS})",
        min, median, mean
    );
}

fn bench_event_queue() {
    bench("engine/event_queue_push_pop_1k", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..1000u32 {
            q.schedule(Cycle((i as u64 * 7919) % 4096), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc += v as u64;
        }
        acc
    });
    bench("engine/event_queue_pop_batch_1k", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..1000u32 {
            q.schedule(Cycle((i as u64 * 7919) % 4096), i);
        }
        let mut acc = 0u64;
        let mut batch = Vec::new();
        while q.pop_batch(Cycle::MAX, &mut batch).is_some() {
            for v in batch.drain(..) {
                acc += v as u64;
            }
        }
        acc
    });
}

fn bench_cache_array() {
    let geom = CacheGeometry::table_v_l1();
    bench("cache/array_insert_get_1k", move || {
        let mut array: CacheArray<u8> = CacheArray::new(geom, ReplacementPolicy::Lru);
        let mut rng = DetRng::new(1);
        let mut hits = 0u32;
        for _ in 0..1000 {
            let addr = rng.below(1 << 16) * 64;
            if array.get(addr).is_some() {
                hits += 1;
            } else {
                array.insert(addr, 0);
            }
        }
        hits
    });
}

fn bench_tlb() {
    bench("mmu/tlb_lookup_fill_1k", || {
        let mut tlb = Tlb::new(64);
        let mut rng = DetRng::new(2);
        let mut hits = 0u32;
        for _ in 0..1000 {
            let vpn = Vpn(rng.below(128));
            if tlb.lookup(vpn).is_none() {
                tlb.fill(TlbEntry {
                    vpn,
                    pfn: Pfn(vpn.0 + 100),
                    writable: true,
                    write_protected: false,
                });
            } else {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_dram() {
    bench("mem/dram_access_1k", || {
        let mut mc = MemoryController::new(DramConfig::default());
        let mut t = Cycle(0);
        for i in 0..1000u64 {
            t = mc.access(t, PhysAddr(i * 64), i % 4 == 0);
        }
        t
    });
}

fn bench_hierarchy() {
    bench("coherence/hierarchy_1k_loads", || {
        let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::SwiftDir));
        let mut t = Cycle(0);
        for i in 0..1000u64 {
            let addr = PhysAddr(0x10_0000 + (i % 256) * 64);
            h.issue(t, (i % 2) as usize, CoreRequest::load(addr));
            t += Cycle(5);
        }
        h.run_until_idle().len()
    });
}

fn main() {
    println!("Simulator micro-benchmarks ({WARMUP} warmup + {ITERS} timed iterations)\n");
    bench_event_queue();
    bench_cache_array();
    bench_tlb();
    bench_dram();
    bench_hierarchy();
}
