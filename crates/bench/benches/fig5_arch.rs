//! Figure 5 — WP-bit transport under the three commercial L1
//! architectures: where/when the write-protection information becomes
//! available, and the translation latency each architecture exposes.

use swiftdir_cache::L1Architecture;
use swiftdir_coherence::{CoherenceEvent, ProtocolKind};
use swiftdir_core::{ExperimentSet, System, SystemConfig};
use swiftdir_cpu::{CpuModel, MemOp};
use swiftdir_mmu::{MapFlags, Prot, VirtAddr};

/// One architecture's measured row: steady-state hit and miss latency,
/// and whether the WP bit reached the directory.
fn measure(arch: L1Architecture) -> (u64, u64, bool) {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(2)
            .protocol(ProtocolKind::SwiftDir)
            .cpu_model(CpuModel::TimingSimple)
            .l1_architecture(arch)
            .build(),
    );
    let pid = sys.spawn_process();
    let va = sys
        .process_mut(pid)
        .mmap(8192, Prot::READ, MapFlags::PRIVATE)
        .unwrap();
    // Cold access faults the page in; warm-ups leave a measurable
    // steady state.
    sys.timed_access(0, pid, va, MemOp::Load);
    let hit = sys.timed_access(0, pid, va, MemOp::Load);
    // A warm-TLB L1 miss: another line of the same page, evict-free.
    let miss = sys.timed_access(0, pid, VirtAddr(va.0 + 64), MemOp::Load);
    let wp_ok = sys.hierarchy().stats().event(CoherenceEvent::GetsWp) >= 2;
    (hit.get(), miss.get(), wp_ok)
}

fn main() {
    println!("Figure 5 — write-protected information transport per L1 architecture\n");
    println!(
        "{:<6} {:<22} {:>9} {:>10} {:>12}",
        "arch", "(where, when)", "hit(cyc)", "miss(cyc)", "GETS_WP ok"
    );
    let rows = ExperimentSet::new(L1Architecture::ALL.to_vec()).run(|&arch| measure(arch));
    for (arch, (hit, miss, wp_ok)) in L1Architecture::ALL.into_iter().zip(rows) {
        println!(
            "{:<6} {:<22} {:>9} {:>10} {:>12}",
            arch.to_string(),
            format!("{:?}", arch.wp_arrival()),
            hit,
            miss,
            wp_ok,
        );
    }
    println!(
        "\nShape check (paper §IV-B): every architecture delivers the WP bit \
         by the time the request reaches the PIPT LLC, so GETS_WP works \
         everywhere; only the translation-latency placement differs."
    );
}
