//! Figure 7 — single-threaded SPEC CPU 2017: normalized IPC of SwiftDir
//! and S-MESI over MESI, per benchmark (23 synthetic profiles).

use swiftdir_coherence::ProtocolKind;
use swiftdir_core::{ExperimentSet, System, SystemConfig};
use swiftdir_cpu::CpuModel;
use swiftdir_workloads::{SpecBenchmark, SynthStream, WorkloadRegions};

const INSTRUCTIONS: u64 = 60_000;

fn ipc(bench: SpecBenchmark, protocol: ProtocolKind) -> f64 {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(CpuModel::DerivO3)
            .build(),
    );
    let pid = sys.spawn_process();
    let params = bench.params(INSTRUCTIONS);
    let regions = WorkloadRegions::map(&mut sys, pid, &params);
    let stream = SynthStream::new(params, regions, bench.seed());
    sys.run_thread_stream(pid, 0, stream);
    sys.run_to_completion().ipc()
}

fn main() {
    println!(
        "Figure 7 — SPEC CPU 2017 normalized IPC over MESI \
         ({INSTRUCTIONS} instructions per run, DerivO3CPU)\n"
    );
    println!(
        "{:<12} {:>9} {:>10} {:>10}",
        "benchmark", "MESI", "SwiftDir%", "S-MESI%"
    );
    // One experiment per (benchmark, protocol) point, fanned over worker
    // threads; results come back in input order, so rows print as before.
    let protocols = [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
    ];
    let points: Vec<(SpecBenchmark, ProtocolKind)> = SpecBenchmark::ALL
        .into_iter()
        .flat_map(|b| protocols.into_iter().map(move |p| (b, p)))
        .collect();
    let ipcs = ExperimentSet::new(points).run(|&(b, p)| ipc(b, p));

    let mut swift_sum = 0.0;
    let mut smesi_sum = 0.0;
    for (i, bench) in SpecBenchmark::ALL.into_iter().enumerate() {
        let mesi = ipcs[i * 3];
        let swift = ipcs[i * 3 + 1] / mesi * 100.0;
        let smesi = ipcs[i * 3 + 2] / mesi * 100.0;
        swift_sum += swift;
        smesi_sum += smesi;
        println!(
            "{:<12} {:>9.4} {:>10.3} {:>10.3}",
            bench.name(),
            mesi,
            swift,
            smesi
        );
    }
    let n = SpecBenchmark::ALL.len() as f64;
    println!(
        "\n{:<12} {:>9} {:>10.3} {:>10.3}",
        "average",
        "100",
        swift_sum / n,
        smesi_sum / n
    );
    println!(
        "\nShape check (paper): SwiftDir ≥ 100% on average (it serves shared \
         reads from the LLC); S-MESI mixed, losing on write-heavy profiles."
    );
}
