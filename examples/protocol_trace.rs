//! An annotated walk through the paper's protocol figures: runs each
//! scenario of Figures 1–4 on the real controllers and narrates the
//! states and message counts.
//!
//! ```sh
//! cargo run --example protocol_trace
//! ```

use sim_engine::Cycle;
use swiftdir::coherence::{CoreRequest, Hierarchy, HierarchyConfig};
use swiftdir::prelude::*;

const X: PhysAddr = PhysAddr(0x8_0000);

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn states(h: &Hierarchy, label: &str) {
    println!(
        "  {label}: L1[A]={} L1[B]={}  LLC={}",
        h.l1_state(0, X),
        h.l1_state(1, X),
        h.llc_state(X)
    );
}

fn delta(h: &Hierarchy, before: &[(CoherenceEvent, u64)]) {
    let msgs: Vec<String> = before
        .iter()
        .filter_map(|&(e, n)| {
            let now = h.stats().event(e);
            (now > n).then(|| format!("{e}×{}", now - n))
        })
        .collect();
    println!(
        "  messages: {}",
        if msgs.is_empty() {
            "(none)".into()
        } else {
            msgs.join(", ")
        }
    );
}

fn snapshot(h: &Hierarchy) -> Vec<(CoherenceEvent, u64)> {
    CoherenceEvent::ALL
        .iter()
        .map(|&e| (e, h.stats().event(e)))
        .collect()
}

fn main() {
    // --- Figure 1: the exploitable timing difference under MESI ------------
    section("Figure 1(a) — MESI: remote load of E-state data");
    let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::Mesi));
    h.issue(Cycle(0), 1, CoreRequest::load(X));
    h.run_until_idle();
    states(&h, "after core B's initial load");
    let snap = snapshot(&h);
    h.issue(Cycle(1000), 0, CoreRequest::load(X));
    let done = h.run_until_idle();
    states(&h, "after core A's remote load ");
    delta(&h, &snap);
    println!(
        "  core A's latency: {} cycles (owner-forwarded)",
        done[0].latency()
    );

    section("Figure 1(b) — MESI: remote load of S-state data");
    let mut h = Hierarchy::new(HierarchyConfig::table_v(3, ProtocolKind::Mesi));
    h.issue(Cycle(0), 1, CoreRequest::load(X));
    h.run_until_idle();
    h.issue(Cycle(1000), 2, CoreRequest::load(X));
    h.run_until_idle();
    let snap = snapshot(&h);
    h.issue(Cycle(2000), 0, CoreRequest::load(X));
    let done = h.run_until_idle();
    delta(&h, &snap);
    println!(
        "  core A's latency: {} cycles (LLC direct) — the E/S gap is the channel",
        done[0].latency()
    );

    // --- Figures 2-3: E→M -------------------------------------------------
    section("Figure 3(a) — MESI: silent E→M upgrade");
    let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::Mesi));
    h.issue(Cycle(0), 0, CoreRequest::load(X));
    h.run_until_idle();
    let snap = snapshot(&h);
    h.issue(Cycle(1000), 0, CoreRequest::store(X));
    let done = h.run_until_idle();
    states(&h, "after the store");
    delta(&h, &snap);
    println!(
        "  store latency: {} cycle (LLC still believes E)",
        done[0].latency()
    );

    section("Figure 2 / 3(b) — S-MESI: explicit E→M with LLC ACK");
    let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::SMesi));
    h.issue(Cycle(0), 0, CoreRequest::load(X));
    h.run_until_idle();
    let snap = snapshot(&h);
    h.issue(Cycle(1000), 0, CoreRequest::store(X));
    let done = h.run_until_idle();
    states(&h, "after the store");
    delta(&h, &snap);
    println!(
        "  store latency: {} cycles (the overprotection tax)",
        done[0].latency()
    );

    // --- Figure 4: SwiftDir -------------------------------------------------
    section("Figure 4(a) — SwiftDir: initial load of write-protected data");
    let mut h = Hierarchy::new(HierarchyConfig::table_v(2, ProtocolKind::SwiftDir));
    let snap = snapshot(&h);
    h.issue(Cycle(0), 1, CoreRequest::load(X).write_protected());
    h.run_until_idle();
    states(&h, "after core B's initial load");
    delta(&h, &snap);
    println!("  I→S directly: no exclusivity, nothing for an attacker to observe");

    section("Figure 4(b) — SwiftDir: remote load of that data");
    let snap = snapshot(&h);
    h.issue(Cycle(1000), 0, CoreRequest::load(X).write_protected());
    let done = h.run_until_idle();
    states(&h, "after core A's remote load ");
    delta(&h, &snap);
    println!(
        "  latency: {} cycles — identical to the S case; channel closed",
        done[0].latency()
    );

    section("Figure 4(c)+(d) — SwiftDir: unshared data keep MESI speed");
    let y = PhysAddr(0x9_0000);
    let snap = snapshot(&h);
    h.issue(Cycle(2000), 0, CoreRequest::load(y));
    h.run_until_idle();
    h.issue(Cycle(3000), 0, CoreRequest::store(y));
    let done = h.run_until_idle();
    delta(&h, &snap);
    println!(
        "  heap line: load→E, store silent E→M in {} cycle — no overprotection",
        done[0].latency()
    );
}
