//! The E/S coherence covert channel (paper §II-B), demonstrated live:
//! a sender/receiver pair leaks a message byte-by-byte under MESI, and
//! the same attack collapses to garbage under SwiftDir.
//!
//! ```sh
//! cargo run --example covert_channel
//! ```

use swiftdir::core::CovertChannel;
use swiftdir::prelude::*;

fn to_bits(msg: &str) -> Vec<bool> {
    msg.bytes()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

fn from_bits(bits: &[bool]) -> String {
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .map(|b| {
            if b.is_ascii_graphic() || b == b' ' {
                b as char
            } else {
                '.'
            }
        })
        .collect()
}

fn main() {
    let secret = "SWIFTDIR";
    let bits = to_bits(secret);
    println!("secret: {secret:?} ({} bits)\n", bits.len());

    for protocol in [
        ProtocolKind::Mesi,
        ProtocolKind::SwiftDir,
        ProtocolKind::SMesi,
    ] {
        let outcome = CovertChannel::new(protocol).transmit(&bits);
        let decoded = from_bits(&outcome.decoded);
        let lat_min = outcome.latencies.iter().min().unwrap().get();
        let lat_max = outcome.latencies.iter().max().unwrap().get();
        println!("{protocol}:");
        println!("  receiver decoded : {decoded:?}");
        println!(
            "  bit accuracy     : {:.1}%  (probe latencies {}..{} cycles)",
            outcome.accuracy() * 100.0,
            lat_min,
            lat_max
        );
        println!(
            "  verdict          : {}\n",
            if outcome.leaks() {
                "LEAKS — E- and S-state probes are distinguishable"
            } else {
                "closed — every probe served from the LLC at one latency"
            }
        );
    }
}
