//! The identification pipeline end to end (paper §IV-A): two processes
//! `dlopen` the same library and a third pair of heap pages is merged by
//! KSM — every resulting page is write-protected, travels as `GETS_WP`,
//! and is served from the LLC under SwiftDir.
//!
//! ```sh
//! cargo run --example shared_library
//! ```

use swiftdir::cpu::MemOp;
use swiftdir::mmu::{LibraryImage, SegmentKind};
use swiftdir::prelude::*;

fn main() {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(2)
            .protocol(ProtocolKind::SwiftDir)
            .cpu_model(CpuModel::TimingSimple)
            .build(),
    );

    // --- shared library ----------------------------------------------------
    let lib = LibraryImage::synthetic("libdemo.so.1", 4, 2, 1);
    let p1 = sys.spawn_process();
    let p2 = sys.spawn_process();
    let (map1, file) = sys.process_mut(p1).load_library(&lib, None).unwrap();
    let (map2, _) = sys.process_mut(p2).load_library(&lib, Some(file)).unwrap();
    println!(
        "loaded {} into two processes (shared page cache)\n",
        lib.name()
    );

    for kind in [SegmentKind::Text, SegmentKind::Rodata, SegmentKind::Data] {
        let va1 = map1.base_of(kind).unwrap();
        let wp = sys.process_mut(p1).is_write_protected(va1).unwrap();
        println!("  {kind:?} segment: write-protected = {wp}");
    }

    // Process 1 (core 0) reads a rodata line, then process 2 (core 1) reads
    // the same *physical* line through its own mapping.
    let ro1 = map1.base_of(SegmentKind::Rodata).unwrap();
    let ro2 = map2.base_of(SegmentKind::Rodata).unwrap();
    sys.timed_access(0, p1, ro1, MemOp::Load);
    sys.timed_access(1, p2, VirtAddr(ro2.0 + 128), MemOp::Load); // TLB warm-up
    let remote = sys.timed_access(1, p2, ro2, MemOp::Load);
    println!(
        "\n  cross-process read of the shared rodata line: {remote} \
         (LLC-served, state S — no owner forwarding)"
    );
    println!(
        "  GETS_WP sent so far: {}",
        sys.hierarchy().stats().event(CoherenceEvent::GetsWp)
    );

    // --- CoW on the data segment -------------------------------------------
    let d1 = map1.base_of(SegmentKind::Data).unwrap();
    sys.process_mut(p1).write(d1, b"patched!").unwrap();
    println!(
        "\n  after process 1 writes its data segment: write-protected = {}",
        sys.process_mut(p1).is_write_protected(d1).unwrap()
    );
    println!(
        "  process 2 still sees pristine data: write-protected = {}",
        sys.process_mut(p2)
            .is_write_protected(map2.base_of(SegmentKind::Data).unwrap())
            .unwrap()
    );

    // --- KSM ---------------------------------------------------------------
    let h1 = sys
        .process_mut(p1)
        .mmap(4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
        .unwrap();
    let h2 = sys
        .process_mut(p2)
        .mmap(4096, Prot::READ | Prot::WRITE, MapFlags::PRIVATE)
        .unwrap();
    sys.process_mut(p1)
        .write(h1, b"identical heap page")
        .unwrap();
    sys.process_mut(p2)
        .write(h2, b"identical heap page")
        .unwrap();
    let merged = sys.run_ksm();
    println!(
        "\nKSM pass: scanned {} pages, merged {}, freed {} frames",
        merged.scanned, merged.merged, merged.frames_freed
    );
    println!(
        "  merged heap page now write-protected = {}",
        sys.process_mut(p1).is_write_protected(h1).unwrap()
    );
    sys.timed_access(0, p1, h1, MemOp::Load);
    sys.timed_access(1, p2, VirtAddr(h2.0 + 128), MemOp::Load);
    let remote = sys.timed_access(1, p2, h2, MemOp::Load);
    println!("  cross-process read of the merged page: {remote} (LLC-served)");
}
