//! Quickstart: build a Table V machine, run a small workload under all
//! four protocols, and print the headline statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use swiftdir::prelude::*;
use swiftdir::workloads::{SynthParams, SynthStream, WorkloadRegions};

fn main() {
    println!("SwiftDir quickstart — 2-core Table V machine, 20k-instruction mixed workload\n");
    println!(
        "{:<10} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "protocol", "cycles", "IPC", "GETS", "GETS_WP", "upgrades"
    );

    for protocol in ProtocolKind::ALL {
        let mut sys = System::new(
            SystemConfig::builder()
                .cores(2)
                .protocol(protocol)
                .cpu_model(CpuModel::DerivO3)
                .build(),
        );
        let pid = sys.spawn_process();
        let params = SynthParams::balanced(20_000);
        // Two threads over private + shared-read-only regions.
        for core in 0..2 {
            let regions = WorkloadRegions::map(&mut sys, pid, &params);
            let stream = SynthStream::new(params, regions, 42 + core as u64);
            sys.run_thread_stream(pid, core, stream);
        }
        let stats = sys.run_to_completion();
        println!(
            "{:<10} {:>10} {:>8.3} {:>9} {:>9} {:>9}",
            protocol.to_string(),
            stats.roi_cycles(),
            stats.ipc(),
            stats.hierarchy.event(CoherenceEvent::Gets),
            stats.hierarchy.event(CoherenceEvent::GetsWp),
            stats.hierarchy.event(CoherenceEvent::Upgrade),
        );
    }

    println!(
        "\nNote how SwiftDir turns shared-read-only misses into GETS_WP while \
         keeping upgrades (S-MESI's tax) at zero for unshared data."
    );
}
