//! Write-after-read intensive applications (paper §V-E / Figure 10):
//! shows S-MESI's overprotection tax and that SwiftDir keeps MESI's
//! silent-upgrade speed, on both CPU models.
//!
//! ```sh
//! cargo run --release --example write_after_read
//! ```

use swiftdir::prelude::*;
use swiftdir::workloads::WarApp;

fn run(app: WarApp, protocol: ProtocolKind, model: CpuModel, elements: u64) -> u64 {
    let mut sys = System::new(
        SystemConfig::builder()
            .cores(1)
            .protocol(protocol)
            .cpu_model(model)
            .build(),
    );
    let pid = sys.spawn_process();
    let progs = app.build(&mut sys, pid, elements);
    sys.run_thread_program(pid, 0, progs.warmup.instrs().to_vec());
    sys.run_to_completion();
    sys.run_thread_program(pid, 0, progs.measured.instrs().to_vec());
    sys.run_to_completion().roi_cycles()
}

fn main() {
    let elements = 1024; // exceeds the 512-line L1: steady-state WAR
    for (label, model) in [
        ("TimingSimpleCPU (in-order)", CpuModel::TimingSimple),
        ("DerivO3CPU (out-of-order)", CpuModel::DerivO3),
    ] {
        println!("{label}, {elements}-line arrays — cycles (normalized to MESI):");
        println!(
            "  {:<18} {:>12} {:>12} {:>12}",
            "application", "MESI", "SwiftDir", "S-MESI"
        );
        for app in WarApp::ALL {
            let mesi = run(app, ProtocolKind::Mesi, model, elements);
            let swift = run(app, ProtocolKind::SwiftDir, model, elements);
            let smesi = run(app, ProtocolKind::SMesi, model, elements);
            println!(
                "  {:<18} {:>7} 1.00 {:>7} {:.2} {:>7} {:.2}",
                app.to_string(),
                mesi,
                swift,
                swift as f64 / mesi as f64,
                smesi,
                smesi as f64 / mesi as f64,
            );
        }
        println!();
    }
    println!(
        "SwiftDir tracks MESI (silent E→M preserved for unshared arrays); \
         S-MESI pays an Upgrade/ACK round trip per write-after-read and the \
         out-of-order core amplifies the gap (paper reports up to 2.62x)."
    );
}
